module Graph = Sgraph.Graph

(* The derived time-edge stream, materialized lazily as a label-bounded
   *prefix*.  A view with [bound = B] holds exactly the entries whose
   label is <= B, in the same order the dense counting-sorted stream
   would hold them: label ascending, ties in emission order (edge id
   ascending, u->v before v->u).  Because the sort is stable and the
   emission order is fixed, the view for bound B is a byte prefix of
   the view for bound 2B — so kernels that exhaust a view keep their
   stream indices (arrival predecessors, scan positions) and continue
   exactly where they stopped after an {!extend}.

   On the normalized U-RTN clique the temporal diameter is
   Theta(log n), so sweeps only ever consume labels up to O(log n) out
   of a lifetime of n: the prefix holds ~ m * B / a entries — O(n log n)
   for the clique — while the dense stream would hold all m * r.  That
   ratio is the whole point of the backend.

   Concurrency: views are immutable and published through an [Atomic]
   (release/acquire), so readers never lock.  Builders serialize on a
   mutex and re-check the published bound before building, so each step
   of the deterministic bound schedule (B0, 2*B0, ... capped at the
   lifetime) is built exactly once per instance no matter how many
   domains race — keeping the [implicit.label_rolls] probe identical at
   any [--jobs]. *)

type view = {
  bound : int;  (* every entry with label <= bound is present *)
  complete : bool;  (* bound >= lifetime: this is the whole stream *)
  te_src : int array;
  te_dst : int array;
  te_label : int array;
  te_edge : int array;
}

type t = {
  graph : Graph.t;
  labels : Labels.t;
  lifetime : int;
  initial_bound : int;
  cur : view Atomic.t;
  lock : Mutex.t;
}

let default_initial_bound = 64

let create graph ~labels ~lifetime =
  if lifetime < 1 then invalid_arg "Implicit.Stream.create: lifetime < 1";
  {
    graph;
    labels;
    lifetime;
    initial_bound = Stdlib.min lifetime default_initial_bound;
    cur =
      Atomic.make
        {
          bound = 0;
          complete = false;
          te_src = [||];
          te_dst = [||];
          te_label = [||];
          te_edge = [||];
        };
    lock = Mutex.create ();
  }

let graph t = t.graph
let labels t = t.labels
let lifetime t = t.lifetime
let view t = Atomic.get t.cur

(* Growable quad buffer for one collect pass. *)
type buf = {
  mutable len : int;
  mutable src : int array;
  mutable dst : int array;
  mutable lab : int array;
  mutable edg : int array;
}

let buf_push b u v l e =
  let cap = Array.length b.src in
  if b.len = cap then begin
    let cap' = Stdlib.max 1024 (2 * cap) in
    let grow a = Array.append a (Array.make (cap' - cap) 0) in
    b.src <- grow b.src;
    b.dst <- grow b.dst;
    b.lab <- grow b.lab;
    b.edg <- grow b.edg
  end;
  b.src.(b.len) <- u;
  b.dst.(b.len) <- v;
  b.lab.(b.len) <- l;
  b.edg.(b.len) <- e;
  b.len <- b.len + 1

(* One roll pass over all edges, keeping entries with lo < label <= hi
   in emission order, then a stable counting sort by label appended
   onto [prev]'s arrays.  All labels in the band exceed [prev.bound],
   so old arrays + sorted band is exactly the stream prefix for
   [hi]. *)
let build_band t (prev : view) ~hi =
  let lo = prev.bound in
  let g = t.graph in
  let undirected = not (Graph.is_directed g) in
  let r = Labels.rolls_per_edge t.labels in
  let scratch = Array.make r 0 in
  let b = { len = 0; src = [||]; dst = [||]; lab = [||]; edg = [||] } in
  Graph.iter_edges g (fun e u v ->
      if r = 1 then begin
        let l = Labels.roll t.labels ~edge:e ~k:0 in
        if l > lo && l <= hi then begin
          buf_push b u v l e;
          if undirected then buf_push b v u l e
        end
      end
      else begin
        let cnt = Labels.fill_sorted t.labels ~edge:e scratch in
        for j = 0 to cnt - 1 do
          let l = scratch.(j) in
          if l > lo && l <= hi then begin
            buf_push b u v l e;
            if undirected then buf_push b v u l e
          end
        done
      end);
  Labels.note_bulk_rolls (Graph.m g * r);
  let old_len = Array.length prev.te_label in
  let total = old_len + b.len in
  let extendarr old = Array.append old (Array.make b.len 0) in
  let te_src = extendarr prev.te_src in
  let te_dst = extendarr prev.te_dst in
  let te_label = extendarr prev.te_label in
  let te_edge = extendarr prev.te_edge in
  (* Stable counting sort of the band into the tail. *)
  let counts = Array.make (hi - lo + 1) 0 in
  for i = 0 to b.len - 1 do
    let c = b.lab.(i) - lo in
    counts.(c) <- counts.(c) + 1
  done;
  let sum = ref old_len in
  for c = 1 to hi - lo do
    let k = counts.(c) in
    counts.(c) <- !sum;
    sum := !sum + k
  done;
  assert (!sum = total);
  for i = 0 to b.len - 1 do
    let c = b.lab.(i) - lo in
    let pos = counts.(c) in
    counts.(c) <- pos + 1;
    te_src.(pos) <- b.src.(i);
    te_dst.(pos) <- b.dst.(i);
    te_label.(pos) <- b.lab.(i);
    te_edge.(pos) <- b.edg.(i)
  done;
  { bound = hi; complete = hi >= t.lifetime; te_src; te_dst; te_label; te_edge }

let extend t ~past =
  let v = Atomic.get t.cur in
  if v.bound > past then true
  else if v.complete then false
  else begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        (* Re-check under the lock: another domain may have published a
           deeper prefix while we waited.  Each schedule step is built
           at most once per instance. *)
        let rec grow () =
          let v = Atomic.get t.cur in
          if v.bound > past || v.complete then ()
          else begin
            let hi =
              if v.bound = 0 then t.initial_bound
              else Stdlib.min t.lifetime (2 * v.bound)
            in
            Atomic.set t.cur (build_band t v ~hi);
            grow ()
          end
        in
        grow ());
    (Atomic.get t.cur).bound > past
  end

let force_complete t =
  let rec go () =
    let v = Atomic.get t.cur in
    if not v.complete then begin
      ignore (extend t ~past:v.bound);
      go ()
    end
  in
  go ();
  Atomic.get t.cur
