(* Bounded retry with capped exponential backoff, for transient IO.
   Policy knobs are explicit at the call site; the backoff never
   exceeds [max_delay_s], so even a persistently failing path fails
   fast (a handful of milliseconds) rather than hanging a run. *)

let with_backoff ?(attempts = 4) ?(base_delay_s = 0.001) ?(max_delay_s = 0.05)
    ~retryable ~on_retry f =
  if attempts < 1 then invalid_arg "Retry.with_backoff: attempts must be >= 1";
  let rec go k =
    match f k with
    | v -> v
    | exception e when k + 1 < attempts && retryable e ->
      on_retry k e;
      let d = Float.min max_delay_s (base_delay_s *. (2. ** float_of_int k)) in
      if d > 0. then Unix.sleepf d;
      go (k + 1)
  in
  go 0
