(* Bounded retry with capped exponential backoff, for transient IO.
   Policy knobs are explicit at the call site; the backoff never
   exceeds [max_delay_s], so even a persistently failing path fails
   fast (a handful of milliseconds) rather than hanging a run.

   Jitter is deterministic: attempt [k]'s delay is scaled by a factor
   derived from a pure [Plan.roll] of [(jitter_seed, k)], never from
   the wall clock or a shared RNG — so a faulted run that retries is
   as byte-identical as one that doesn't, while concurrent retriers
   seeded differently still decorrelate (no thundering herd against a
   recovering disk or socket).

   The optional budget caps total wall time spent inside the combinator
   (attempts plus sleeps): once the next sleep would land past the
   budget, the last failure is re-raised instead of retried.  A retry
   loop is a latency amplifier; the budget keeps it from amplifying a
   persistent fault into an unbounded stall on a deadline-bearing path
   (the serve engine's store reads are the motivating caller). *)

let backoff_delay ?(base_delay_s = 0.001) ?(max_delay_s = 0.05) ?(jitter = 0.)
    ?(jitter_seed = 0L) k =
  if jitter < 0. || jitter > 1. then
    invalid_arg "Retry.backoff_delay: jitter must be in [0, 1]";
  let d = Float.min max_delay_s (base_delay_s *. (2. ** float_of_int k)) in
  if jitter = 0. then d
  else begin
    (* Uniform factor in [1 - jitter/2, 1 + jitter/2], a pure function
       of (seed, attempt). *)
    let u =
      Plan.roll
        { Plan.default with seed = jitter_seed }
        ~site:"retry.jitter" ~a:k ~b:0
    in
    d *. (1. +. (jitter *. (u -. 0.5)))
  end

let with_backoff ?(attempts = 4) ?(base_delay_s = 0.001) ?(max_delay_s = 0.05)
    ?(jitter = 0.) ?(jitter_seed = 0L) ?budget_s ~retryable ~on_retry f =
  if attempts < 1 then invalid_arg "Retry.with_backoff: attempts must be >= 1";
  (match budget_s with
  | Some b when b < 0. -> invalid_arg "Retry.with_backoff: negative budget"
  | _ -> ());
  let started = Unix.gettimeofday () in
  let delay k =
    backoff_delay ~base_delay_s ~max_delay_s ~jitter ~jitter_seed k
  in
  (* A retry is allowed only when its backoff sleep still fits inside
     the budget; the attempt after the sleep may overrun (OCaml cannot
     preempt it), but the combinator never *chooses* to start one past
     the line. *)
  let within_budget k =
    match budget_s with
    | None -> true
    | Some b -> Unix.gettimeofday () -. started +. delay k <= b
  in
  let rec go k =
    match f k with
    | v -> v
    | exception e when k + 1 < attempts && retryable e && within_budget k ->
      on_retry k e;
      let d = delay k in
      if d > 0. then Unix.sleepf d;
      go (k + 1)
  in
  go 0
