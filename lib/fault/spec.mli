(** Textual fault-plan specs, the [--fault-spec] format.

    A spec is a comma-separated [key=value] list over the keys [seed],
    [trial], [fatal], [delay], [delay-ms], [io], [torn], [poison] —
    each optional, defaulting to {!Plan.default} (inject nothing).
    Rates must lie in [\[0, 1]]; [delay-ms] is a non-negative float;
    [seed] is a 64-bit integer.  Unknown keys and malformed values are
    errors: a typo'd spec that silently injected nothing would make a
    chaos run vacuous. *)

val parse : string -> (Plan.t, string) result

val to_string : Plan.t -> string
(** Canonical spec for a plan: only the fields that differ from
    {!Plan.default}, so [parse (to_string p)] round-trips any plan
    reachable from [parse] (the empty string means "inject nothing"). *)
