(* A fault plan is a pure value: a seed plus per-site rates.  Every
   injection decision is a [roll] — a hash of (plan seed, site name,
   two site-chosen integers) mapped to [0, 1) — so whether site s
   injects at trial i, attempt k is a function of the plan alone,
   independent of execution order, job count, or wall clock.  That is
   what lets a chaos run assert byte-identical output at any --jobs:
   the *fault pattern* itself is reproducible. *)

type t = {
  seed : int64;
  trial : float;  (* P(injected exception per trial attempt) *)
  fatal : float;  (* P(an injected trial exception is unretryable) *)
  delay : float;  (* P(injected delay before a trial attempt) *)
  delay_ms : float;  (* length of an injected delay *)
  io : float;  (* P(transient IO failure per store write attempt) *)
  torn : float;  (* P(a failing write leaves a torn partial file) *)
  poison : float;  (* P(a pool worker refuses a given task) *)
  shard_kill : float;  (* P(the serve router kills a shard, per tick) *)
}

let default =
  {
    seed = 0L;
    trial = 0.;
    fatal = 0.;
    delay = 0.;
    delay_ms = 1.;
    io = 0.;
    torn = 0.;
    poison = 0.;
    shard_kill = 0.;
  }

let active t =
  t.trial > 0. || t.delay > 0. || t.io > 0. || t.poison > 0.
  || t.shard_kill > 0.

(* splitmix64's finalizer is a good 64-bit mixer; chain the site hash
   and both coordinates through it so adjacent trials / attempts land
   on unrelated rolls.  [Hashtbl.hash] on the site string is stable
   within a build, which is all a plan needs. *)
let roll t ~site ~a ~b =
  let mix h x = Prng.Splitmix64.next (Prng.Splitmix64.of_int64 (Int64.logxor h x)) in
  let h = mix t.seed (Int64.of_int (Hashtbl.hash site)) in
  let h = mix h (Int64.of_int a) in
  let h = mix h (Int64.of_int b) in
  (* Top 53 bits -> [0, 1), the standard uniform-double construction. *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53
