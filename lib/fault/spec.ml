(* --fault-spec parser: a comma-separated key=value list, e.g.

     seed=7,trial=0.05,fatal=0.1,io=0.05,torn=0.3,poison=0.1,delay=0.01,delay-ms=2

   Every key is optional (missing keys keep Plan.default); unknown
   keys, unparsable values and out-of-range rates are errors, not
   silently ignored — a typo'd chaos spec that injects nothing would
   make a soak test vacuous. *)

let keys =
  "seed, trial, fatal, delay, delay-ms, io, torn, poison, shard-kill"

let parse_field plan key value =
  let prob what set =
    match float_of_string_opt value with
    | Some p when p >= 0. && p <= 1. -> Ok (set p)
    | Some _ -> Error (Printf.sprintf "%s=%s: rate must be in [0, 1]" what value)
    | None -> Error (Printf.sprintf "%s=%s: not a number" what value)
  in
  match key with
  | "seed" -> (
    match Int64.of_string_opt value with
    | Some s -> Ok { plan with Plan.seed = s }
    | None -> Error (Printf.sprintf "seed=%s: not an integer" value))
  | "trial" -> prob key (fun p -> { plan with Plan.trial = p })
  | "fatal" -> prob key (fun p -> { plan with Plan.fatal = p })
  | "delay" -> prob key (fun p -> { plan with Plan.delay = p })
  | "delay-ms" -> (
    match float_of_string_opt value with
    | Some ms when ms >= 0. -> Ok { plan with Plan.delay_ms = ms }
    | Some _ | None ->
      Error (Printf.sprintf "delay-ms=%s: must be a non-negative number" value))
  | "io" -> prob key (fun p -> { plan with Plan.io = p })
  | "torn" -> prob key (fun p -> { plan with Plan.torn = p })
  | "poison" -> prob key (fun p -> { plan with Plan.poison = p })
  | "shard-kill" -> prob key (fun p -> { plan with Plan.shard_kill = p })
  | _ -> Error (Printf.sprintf "unknown key %S (known: %s)" key keys)

let parse s =
  let fields =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  List.fold_left
    (fun acc field ->
      match acc with
      | Error _ as e -> e
      | Ok plan -> (
        match String.index_opt field '=' with
        | None -> Error (Printf.sprintf "%S: expected key=value" field)
        | Some i ->
          parse_field plan
            (String.sub field 0 i)
            (String.sub field (i + 1) (String.length field - i - 1))))
    (Ok Plan.default) fields

let to_string (p : Plan.t) =
  String.concat ","
    (List.filter_map
       (fun x -> x)
       [
         (if p.seed <> 0L then Some (Printf.sprintf "seed=%Ld" p.seed) else None);
         (if p.trial > 0. then Some (Printf.sprintf "trial=%g" p.trial) else None);
         (if p.fatal > 0. then Some (Printf.sprintf "fatal=%g" p.fatal) else None);
         (if p.delay > 0. then Some (Printf.sprintf "delay=%g" p.delay) else None);
         (if p.delay > 0. && p.delay_ms <> Plan.default.delay_ms then
            Some (Printf.sprintf "delay-ms=%g" p.delay_ms)
          else None);
         (if p.io > 0. then Some (Printf.sprintf "io=%g" p.io) else None);
         (if p.io > 0. && p.torn > 0. then Some (Printf.sprintf "torn=%g" p.torn)
          else None);
         (if p.poison > 0. then Some (Printf.sprintf "poison=%g" p.poison)
          else None);
         (if p.shard_kill > 0. then
            Some (Printf.sprintf "shard-kill=%g" p.shard_kill)
          else None);
       ])
