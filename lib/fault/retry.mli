(** Bounded retry with capped exponential backoff. *)

val with_backoff :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  retryable:(exn -> bool) ->
  on_retry:(int -> exn -> unit) ->
  (int -> 'a) ->
  'a
(** [with_backoff ~retryable ~on_retry f] runs [f 0]; if it raises an
    exception [e] with [retryable e], calls [on_retry k e], sleeps
    [min max_delay_s (base_delay_s * 2^k)] and runs [f (k + 1)], up to
    [attempts] attempts total (default 4, base 1 ms, cap 50 ms).  The
    attempt index is passed to [f] so injection sites can re-roll per
    attempt.  The final failure (or any unretryable exception) is
    re-raised.
    @raise Invalid_argument if [attempts < 1]. *)
