(** Bounded retry with capped exponential backoff, deterministic
    jitter, and an optional wall-time budget. *)

val backoff_delay :
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?jitter:float ->
  ?jitter_seed:int64 ->
  int ->
  float
(** [backoff_delay k] is the sleep before attempt [k + 1]:
    [min max_delay_s (base_delay_s * 2^k)], scaled by a factor uniform
    in [1 - jitter/2, 1 + jitter/2] that is a {e pure function} of
    [(jitter_seed, k)] ({!Plan.roll}) — deterministic run to run, so
    faulted runs stay byte-identical, yet differently-seeded retriers
    decorrelate.  [jitter] defaults to [0.] (the exact legacy delays).
    @raise Invalid_argument if [jitter] is outside [\[0, 1\]]. *)

val with_backoff :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  ?jitter:float ->
  ?jitter_seed:int64 ->
  ?budget_s:float ->
  retryable:(exn -> bool) ->
  on_retry:(int -> exn -> unit) ->
  (int -> 'a) ->
  'a
(** [with_backoff ~retryable ~on_retry f] runs [f 0]; if it raises an
    exception [e] with [retryable e], calls [on_retry k e], sleeps
    {!backoff_delay}[ k] and runs [f (k + 1)], up to [attempts]
    attempts total (default 4, base 1 ms, cap 50 ms, no jitter).  The
    attempt index is passed to [f] so injection sites can re-roll per
    attempt.  The final failure (or any unretryable exception) is
    re-raised.

    [budget_s] additionally caps the combinator's total wall time: a
    retry whose backoff sleep would land past the budget is not taken
    and the failure is re-raised immediately ([budget_s = 0.] means
    "never sleep, never retry").  The running attempt itself is not
    preempted — the budget bounds when retries {e start}, which is the
    contract deadline-bearing callers (the serve engine) need.
    @raise Invalid_argument if [attempts < 1], [jitter] is outside
    [\[0, 1\]], or [budget_s] is negative. *)
