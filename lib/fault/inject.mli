(** The armed fault plan and its injection sites.

    Production code calls the site hooks unconditionally; with no plan
    armed each is one atomic load and a branch.  With a plan armed,
    every decision is a deterministic {!Plan.roll} on coordinates
    identifying the operation, so the fault pattern is independent of
    job count and execution order.

    Every injection bumps the ["faults.injected"] counter plus a
    per-site one (["faults.trial"], ["faults.delay"], ["faults.io"],
    ["faults.poison"]) — always, not only under [Obs.Control], so
    chaos runs can report them without [--metrics]. *)

exception Injected of { site : string; retryable : bool }
(** Raised by injection sites.  [retryable] tells the supervisor
    whether a bounded retry may clear it ([Plan.fatal] rolls decide). *)

val arm : Plan.t -> unit
(** Make [plan] the armed plan.  A plan with every rate 0 disarms. *)

val disarm : unit -> unit

val armed : unit -> bool

val plan : unit -> Plan.t option

val before_trial : trial:int -> attempt:int -> unit
(** Trial-site hook, called before attempt [attempt] of trial [trial]:
    may sleep ([Plan.delay]) and may raise {!Injected}
    ([Plan.trial] / [Plan.fatal]). *)

type io_decision =
  | Io_ok
  | Io_error of { message : string; torn : bool }
      (** Fail this write attempt with a [Sys_error]-style message;
          [torn] additionally asks the caller to leave a partial file
          behind, as a crash mid-write would. *)

val io_write : path:string -> attempt:int -> io_decision
(** IO-site hook, rolled on (hash of [path], [attempt]) — so a retry
    of the same write re-rolls and a transient error clears. *)

val poison_worker : worker:int -> generation:int -> bool
(** Pool-site hook: whether worker [worker] refuses the task of
    generation [generation].  A poisoned worker contributes nothing to
    that task; correctness is preserved because the remaining domains
    (at minimum the caller) drain the queue. *)
