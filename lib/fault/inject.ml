(* The armed plan and the injection sites.

   Sites are called unconditionally from production code (Sim.Runner
   trials, Store.Fsio writes, Exec.Pool workers); with no plan armed
   each reduces to one atomic load and a branch, so the fault plane
   costs nothing when idle.  With a plan armed, each site rolls
   deterministically (Plan.roll) on coordinates that identify the
   operation — (trial, attempt) for trials, (path hash, attempt) for
   writes — so the same plan injects the same faults at any job count
   and in any execution order. *)

exception Injected of { site : string; retryable : bool }

let () =
  Printexc.register_printer (function
    | Injected { site; retryable } ->
      Some
        (Printf.sprintf "Fault.Inject.Injected(site=%s, %s)" site
           (if retryable then "retryable" else "unretryable"))
    | _ -> None)

let armed_plan : Plan.t option Atomic.t = Atomic.make None

let arm plan = Atomic.set armed_plan (if Plan.active plan then Some plan else None)
let disarm () = Atomic.set armed_plan None
let armed () = Atomic.get armed_plan <> None
let plan () = Atomic.get armed_plan

(* Counters are always live (never gated on Obs.Control): injections
   are rare, and the chaos command reports them even without
   --metrics. *)
let injected () = Obs.Metrics.incr (Obs.Metrics.counter "faults.injected")

let count site =
  injected ();
  Obs.Metrics.incr (Obs.Metrics.counter ("faults." ^ site))

let before_trial ~trial ~attempt =
  match Atomic.get armed_plan with
  | None -> ()
  | Some p ->
    if p.delay > 0. && Plan.roll p ~site:"trial.delay" ~a:trial ~b:attempt < p.delay
    then begin
      count "delay";
      Unix.sleepf (p.delay_ms /. 1000.)
    end;
    if p.trial > 0. && Plan.roll p ~site:"trial.exn" ~a:trial ~b:attempt < p.trial
    then begin
      count "trial";
      let retryable =
        not (Plan.roll p ~site:"trial.fatal" ~a:trial ~b:attempt < p.fatal)
      in
      raise (Injected { site = "trial"; retryable })
    end

type io_decision =
  | Io_ok
  | Io_error of { message : string; torn : bool }

let io_write ~path ~attempt =
  match Atomic.get armed_plan with
  | None -> Io_ok
  | Some p ->
    let a = Hashtbl.hash path in
    if p.io > 0. && Plan.roll p ~site:"io.write" ~a ~b:attempt < p.io then begin
      count "io";
      let torn = Plan.roll p ~site:"io.torn" ~a ~b:attempt < p.torn in
      let errno =
        if Plan.roll p ~site:"io.errno" ~a ~b:attempt < 0.5 then
          "injected ENOSPC: no space left on device"
        else "injected EIO: input/output error"
      in
      Io_error { message = errno; torn }
    end
    else Io_ok

let poison_worker ~worker ~generation =
  match Atomic.get armed_plan with
  | None -> false
  | Some p ->
    p.poison > 0.
    && Plan.roll p ~site:"pool.poison" ~a:worker ~b:generation < p.poison
    &&
    (count "poison";
     true)
