(* Graceful SIGINT/SIGTERM: run registered cleanup hooks (flush the
   trace sink; checkpoints are already durable, published chunk by
   chunk), then exit with the conventional 128+signal status.  [exit]
   still runs at_exit handlers, so the domain pool joins its workers
   as on a normal exit.

   Hooks run LIFO and at most once per process, whether triggered by a
   signal or explicitly ([run_hooks] from tests). *)

let m = Mutex.create ()
let hooks : (unit -> unit) list ref = ref []
let ran = ref false

let on_shutdown f =
  Mutex.lock m;
  hooks := f :: !hooks;
  Mutex.unlock m

let run_hooks () =
  Mutex.lock m;
  let to_run = if !ran then [] else !hooks in
  ran := true;
  hooks := [];
  Mutex.unlock m;
  List.iter (fun f -> try f () with _ -> ()) to_run

let reset () =
  Mutex.lock m;
  hooks := [];
  ran := false;
  Mutex.unlock m

let exit_status signal = if signal = Sys.sigint then 130 else 143

let install () =
  let handle signal =
    Sys.set_signal signal
      (Sys.Signal_handle
         (fun s ->
           run_hooks ();
           exit (exit_status s)))
  in
  handle Sys.sigint;
  handle Sys.sigterm
