(* Graceful SIGINT/SIGTERM: run registered cleanup hooks (flush the
   trace sink; checkpoints are already durable, published chunk by
   chunk), then exit with the conventional 128+signal status.  [exit]
   still runs at_exit handlers, so the domain pool joins its workers
   as on a normal exit.

   Hooks run LIFO and at most once per process, whether triggered by a
   signal or explicitly ([run_hooks] from tests).  A hook registered
   *after* the hooks have already run — the register-during-drain race:
   some subsystem lazily initialises while the signal handler is
   already tearing the process down — runs immediately in the
   registering thread, still exactly once, so no cleanup is ever
   silently dropped.

   Long-lived processes (the serve loop) install a [graceful] callback
   instead: the first signal notifies it (begin draining: stop
   accepting, flush in-flight) and suppresses the exit, so the process
   can finish cleanly with status 0; a second signal falls through to
   the legacy run-hooks-and-exit path, the escape hatch against a
   wedged drain.  The callback runs in signal-handler context — it
   must only flip atomics, close file descriptors, and the like, never
   take locks the interrupted thread might hold. *)

let m = Mutex.create ()
let hooks : (unit -> unit) list ref = ref []
let ran = ref false

(* The graceful callback is consulted lock-free from the signal
   handler: an interrupted thread may already hold [m], and a handler
   that blocked on it would deadlock the process it is trying to shut
   down. *)
let graceful : (int -> unit) option Atomic.t = Atomic.make None

let on_shutdown f =
  Mutex.lock m;
  let drained = !ran in
  if not drained then hooks := f :: !hooks;
  Mutex.unlock m;
  (* Registered after the drain already happened: honour the
     exactly-once contract by running it here, in the registering
     thread (never inside the signal handler). *)
  if drained then try f () with _ -> ()

let run_hooks () =
  Mutex.lock m;
  let to_run = if !ran then [] else !hooks in
  ran := true;
  hooks := [];
  Mutex.unlock m;
  List.iter (fun f -> try f () with _ -> ()) to_run

let reset () =
  Mutex.lock m;
  hooks := [];
  ran := false;
  Mutex.unlock m;
  Atomic.set graceful None

let exit_status signal = if signal = Sys.sigint then 130 else 143

let set_graceful cb = Atomic.set graceful (Some cb)

let install () =
  let handle signal =
    Sys.set_signal signal
      (Sys.Signal_handle
         (fun s ->
           (* First signal with a graceful callback armed: hand the
              shutdown to the process (it drains and exits itself) and
              disarm, so a second signal forces the immediate path. *)
           match Atomic.exchange graceful None with
           | Some cb -> ( try cb s with _ -> ())
           | None ->
             run_hooks ();
             exit (exit_status s)))
  in
  handle Sys.sigint;
  handle Sys.sigterm
