(** Deterministic fault plans.

    A plan is a seed plus per-site injection rates.  Every decision
    derives from {!roll} — a pure hash of the plan seed, the site name
    and two site-chosen coordinates (typically trial index and attempt
    number) — so the fault pattern is a function of the plan alone:
    independent of execution order, job count and wall clock, and
    reproducible run to run.  Rates of [0.] (the {!default}) disable a
    site entirely. *)

type t = {
  seed : int64;  (** Root of every roll. *)
  trial : float;  (** P(injected exception per trial attempt). *)
  fatal : float;  (** P(an injected trial exception is unretryable). *)
  delay : float;  (** P(injected delay before a trial attempt). *)
  delay_ms : float;  (** Length of an injected delay, milliseconds. *)
  io : float;  (** P(transient IO failure per store write attempt). *)
  torn : float;  (** P(a failing write leaves a torn partial file). *)
  poison : float;  (** P(a pool worker refuses a given task). *)
  shard_kill : float;
      (** P(the serve router SIGKILLs a shard worker, per supervision
          tick) — exercises crash-respawn under live traffic. *)
}

val default : t
(** Seed 0, every rate 0: injects nothing. *)

val active : t -> bool
(** Whether any injection rate is positive. *)

val roll : t -> site:string -> a:int -> b:int -> float
(** Uniform in [\[0, 1)], a pure function of (seed, site, a, b). *)
