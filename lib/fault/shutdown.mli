(** Graceful termination on SIGINT/SIGTERM.

    {!install} replaces both handlers with one that runs every
    registered hook (LIFO, exceptions swallowed, at most once per
    process) and then [exit]s with the conventional [128 + signal]
    status — so [at_exit] cleanups (the domain pool) still run.  The
    CLI registers the trace-sink close here, which publishes the
    JSONL file atomically; checkpoint chunks need no hook because each
    is durable the moment it is written.

    A hook registered {e after} the hooks have already run (the
    register-during-drain race) is executed immediately in the
    registering thread, preserving the exactly-once guarantee. *)

val install : unit -> unit
(** Install the SIGINT and SIGTERM handlers. *)

val on_shutdown : (unit -> unit) -> unit
(** Register a cleanup hook.  Hooks run LIFO.  If the hooks have
    already run (a signal or {!run_hooks} beat the registration), [f]
    runs immediately — exactly once either way. *)

val set_graceful : (int -> unit) -> unit
(** Arm a graceful-drain callback for long-lived processes (the serve
    loop).  The {e first} signal invokes it instead of exiting — the
    callback must promptly initiate a clean shutdown (it runs in
    signal-handler context: flip atomics and close descriptors only,
    take no locks) after which the process exits normally, typically
    with status 0.  The callback is disarmed once consumed, so a
    second signal takes the immediate run-hooks-and-exit path — the
    escape hatch against a wedged drain. *)

val run_hooks : unit -> unit
(** Run the hooks now (idempotent; later signals find nothing left).
    Exposed for tests and for explicit early teardown. *)

val reset : unit -> unit
(** Drop all hooks, disarm any graceful callback and re-enable running
    (tests). *)
