(** Graceful termination on SIGINT/SIGTERM.

    {!install} replaces both handlers with one that runs every
    registered hook (LIFO, exceptions swallowed, at most once per
    process) and then [exit]s with the conventional [128 + signal]
    status — so [at_exit] cleanups (the domain pool) still run.  The
    CLI registers the trace-sink close here, which publishes the
    JSONL file atomically; checkpoint chunks need no hook because each
    is durable the moment it is written. *)

val install : unit -> unit
(** Install the SIGINT and SIGTERM handlers. *)

val on_shutdown : (unit -> unit) -> unit
(** Register a cleanup hook.  Hooks run LIFO. *)

val run_hooks : unit -> unit
(** Run the hooks now (idempotent; later signals find nothing left).
    Exposed for tests and for explicit early teardown. *)

val reset : unit -> unit
(** Drop all hooks and re-enable running (tests). *)
