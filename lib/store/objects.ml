(* Content-addressed on-disk object store.

   Layout under the store directory:

     objects/<aa>/<digest>   object bytes, named by their MD5 digest
                             (first two hex chars shard the directory)
     manifest.jsonl          one JSON object per publish: key ->
                             content digest, size, time, and the
                             human-readable key components
     quarantine/<digest>     objects that failed verification on read
     checkpoints/<run key>/  trial-chunk checkpoints (see Checkpoint)

   Publishes are atomic (tmp file + rename for the object, a single
   fsynced O_APPEND line for the manifest), so a crash leaves either
   the previous state or the new one.  Reads re-digest the bytes and
   compare against the content address: a truncated or bit-flipped
   object is detected, moved to quarantine/ and reported as a miss, so
   the next run transparently repopulates it.  The manifest is loaded
   leniently — a malformed (crash-truncated) final line is skipped. *)

type entry = {
  key : string;
  digest : string;
  size : int;
  time : float;
  meta : (string * string) list;
}

type t = {
  dir : string;
  mutable entries : entry list; (* chronological: oldest first *)
  tbl : (string, entry) Hashtbl.t; (* key -> latest entry *)
}

let default_dir = ".ephemeral-store"

let objects_dir t = Filename.concat t.dir "objects"
let quarantine_dir t = Filename.concat t.dir "quarantine"
let manifest_path t = Filename.concat t.dir "manifest.jsonl"

let object_path t ~digest =
  let shard = if String.length digest >= 2 then String.sub digest 0 2 else "xx" in
  Filename.concat (Filename.concat (objects_dir t) shard) digest

(* ------------------------------------------------------------------ *)
(* Manifest lines: a hand-rolled writer/parser for the tiny JSON
   subset we emit (flat object of strings and numbers, plus one nested
   string-to-string "meta" object).  Dependency-free by design. *)

type json =
  | J_str of string
  | J_num of float
  | J_bool of bool
  | J_obj of (string * json) list

let entry_to_json e =
  let quote s = "\"" ^ Obs.Sink.json_escape s ^ "\"" in
  let meta =
    String.concat ","
      (List.map (fun (k, v) -> quote k ^ ":" ^ quote v) e.meta)
  in
  Printf.sprintf {|{"key":%s,"object":%s,"size":%d,"time":%.6f,"meta":{%s}}|}
    (quote e.key) (quote e.digest) e.size e.time meta

exception Bad_json

let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad_json else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise Bad_json;
    advance ()
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> raise Bad_json
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then raise Bad_json;
          let code =
            (hex line.[!pos] lsl 12) lor (hex line.[!pos + 1] lsl 8)
            lor (hex line.[!pos + 2] lsl 4) lor hex line.[!pos + 3]
          in
          pos := !pos + 4;
          if code > 0xFF then raise Bad_json (* we only ever emit ASCII escapes *)
          else Buffer.add_char buf (Char.chr code)
        | _ -> raise Bad_json);
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some x -> x
    | None -> raise Bad_json
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_str (parse_string ())
    | '{' -> parse_object ()
    | 't' ->
      if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        J_bool true
      end
      else raise Bad_json
    | 'f' ->
      if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        J_bool false
      end
      else raise Bad_json
    | _ -> J_num (parse_number ())
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      J_obj []
    end
    else begin
      let rec fields acc =
        let k = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | ',' -> advance (); fields ((k, v) :: acc)
        | '}' -> advance (); List.rev ((k, v) :: acc)
        | _ -> raise Bad_json
      in
      J_obj (fields [])
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise Bad_json;
  v

let entry_of_line line =
  match parse_json line with
  | exception Bad_json -> None
  | J_obj fields ->
    let str k = match List.assoc_opt k fields with Some (J_str s) -> Some s | _ -> None in
    let num k = match List.assoc_opt k fields with Some (J_num x) -> Some x | _ -> None in
    let meta =
      match List.assoc_opt "meta" fields with
      | Some (J_obj kvs) ->
        List.filter_map
          (fun (k, v) -> match v with J_str s -> Some (k, s) | _ -> None)
          kvs
      | _ -> []
    in
    (match (str "key", str "object", num "size", num "time") with
    | Some key, Some digest, Some size, Some time ->
      Some { key; digest; size = int_of_float size; time; meta }
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)

let load_manifest t =
  match Fsio.read_file (manifest_path t) with
  | None -> ()
  | Some data ->
    String.split_on_char '\n' data
    |> List.iter (fun line ->
           if line <> "" then
             match entry_of_line line with
             | None ->
               (* Malformed (e.g. crash-truncated) line: skip it, but
                  leave an audit trail — a torn line is expected after
                  a crash or an injected torn write, never in bulk. *)
               Obs.Metrics.incr (Obs.Metrics.counter "store.manifest_torn")
             | Some e ->
               t.entries <- e :: t.entries;
               Hashtbl.replace t.tbl e.key e);
    t.entries <- List.rev t.entries

let open_ ~dir =
  Fsio.ensure_dir dir;
  Fsio.ensure_dir (Filename.concat dir "objects");
  let t = { dir; entries = []; tbl = Hashtbl.create 64 } in
  load_manifest t;
  t

let dir t = t.dir
let entries t = t.entries
let find t ~key = Hashtbl.find_opt t.tbl key

let quarantine_object t ~digest =
  let path = object_path t ~digest in
  if Sys.file_exists path then begin
    Fsio.ensure_dir (quarantine_dir t);
    try Sys.rename path (Filename.concat (quarantine_dir t) digest) with
    | Sys_error _ -> Fsio.remove_if_exists path
  end

let quarantine t entry = quarantine_object t ~digest:entry.digest

let get t ~key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some entry ->
    (match Fsio.read_file (object_path t ~digest:entry.digest) with
    | None -> None
    | Some data ->
      if Digest.to_hex (Digest.string data) = entry.digest then Some (data, entry)
      else begin
        (* Truncated or bit-flipped on disk: never hand it out.  Move
           it aside so the next publish repopulates the address. *)
        quarantine t entry;
        None
      end)

let put t ~key ~meta data =
  let digest = Digest.to_hex (Digest.string data) in
  (match Hashtbl.find_opt t.tbl key with
  | Some e when e.digest = digest && Sys.file_exists (object_path t ~digest) ->
    (* Idempotent republish: same key, same content, object intact. *)
    Some e
  | _ -> None)
  |> function
  | Some e -> e
  | None ->
    let path = object_path t ~digest in
    if not (Sys.file_exists path) then begin
      Fsio.write_atomic path data;
      if Obs.Control.enabled () then
        Obs.Metrics.add
          (Obs.Metrics.counter "store.bytes_written")
          (String.length data)
    end;
    let entry =
      { key; digest; size = String.length data; time = Unix.gettimeofday (); meta }
    in
    Fsio.append_line (manifest_path t) (entry_to_json entry);
    t.entries <- t.entries @ [ entry ];
    Hashtbl.replace t.tbl key entry;
    entry

let rewrite_manifest t kept =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_to_json e);
      Buffer.add_char buf '\n')
    kept;
  Fsio.write_atomic (manifest_path t) (Buffer.contents buf);
  t.entries <- kept;
  Hashtbl.reset t.tbl;
  List.iter (fun e -> Hashtbl.replace t.tbl e.key e) kept

let delete_object t ~digest = Fsio.remove_if_exists (object_path t ~digest)

let object_digests_on_disk t =
  let root = objects_dir t in
  match Sys.readdir root with
  | exception Sys_error _ -> []
  | shards ->
    Array.to_list shards
    |> List.concat_map (fun shard ->
           let sdir = Filename.concat root shard in
           if Sys.is_directory sdir then
             Array.to_list (Sys.readdir sdir)
           else [])
