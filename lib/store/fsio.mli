(** Crash-safe filesystem primitives for the store layer.

    Everything the store publishes goes through {!write_atomic}
    (write to [<path>.tmp], fsync, [rename]) so a crash at any point
    leaves either the previous file or the new one — never a
    truncated hybrid.  [Sim.Report]'s CSV/Markdown writers use the
    same primitive.

    {b Transient-error handling.}  Both write paths retry transient
    failures ([Sys_error] / [Unix_error]) with capped exponential
    backoff, a handful of attempts total, counting each retry in the
    ["store.io_retries"] counter; only a persistent failure reaches
    the caller.  [Fault.Inject.io_write] is consulted once per attempt
    — an armed chaos plan exercises exactly this machinery, torn
    partial files included.  After a persistent failure, callers for
    whom persistence is only an optimization flip the process-wide
    {!degrade} latch and stop touching the store for the rest of the
    run ({!degraded}); the computation itself continues. *)

val ensure_dir : string -> unit
(** Create a directory and any missing parents ([mkdir -p]). *)

val write_atomic : string -> string -> unit
(** [write_atomic path data]: write [data] to [path ^ ".tmp"], fsync,
    atomically [rename] over [path] (creating parent directories as
    needed), then fsync the parent directory so the publish survives
    power loss.  Raises [Sys_error] on persistent I/O failure, after
    removing the temporary file and exhausting retries. *)

val append_line : string -> string -> unit
(** [append_line path line]: append [line ^ "\n"] in [O_APPEND] mode
    and fsync (plus a parent-directory fsync when the append creates
    the file).  Used for the JSONL manifest; a crash mid-append leaves
    at most one malformed final line, which readers skip (and count,
    see ["store.manifest_torn"]).  Retries as {!write_atomic} does; a
    retry after a torn attempt first terminates the partial line. *)

val degraded : unit -> bool
(** Whether the store has been switched off for the rest of the run. *)

val degrade : what:string -> unit
(** Latch {!degraded} (idempotent).  The first call warns on stderr
    and bumps ["store.degraded"]. *)

val reset_degraded : unit -> unit
(** Clear the latch (tests). *)

val read_file : string -> string option
(** Whole-file read; [None] if the file cannot be opened. *)

val remove_if_exists : string -> unit

val remove_tree : string -> unit
(** Recursive best-effort delete of a file or directory. *)

val fsync_channel : out_channel -> unit
(** Flush then fsync (best-effort) an output channel. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory entry (after a rename). *)
