(** Crash-safe filesystem primitives for the store layer.

    Everything the store publishes goes through {!write_atomic}
    (write to [<path>.tmp], fsync, [rename]) so a crash at any point
    leaves either the previous file or the new one — never a
    truncated hybrid.  [Sim.Report]'s CSV/Markdown writers use the
    same primitive. *)

val ensure_dir : string -> unit
(** Create a directory and any missing parents ([mkdir -p]). *)

val write_atomic : string -> string -> unit
(** [write_atomic path data]: write [data] to [path ^ ".tmp"], fsync,
    then atomically [rename] over [path] (creating parent directories
    as needed).  Raises [Sys_error] on I/O failure, after removing the
    temporary file. *)

val append_line : string -> string -> unit
(** [append_line path line]: append [line ^ "\n"] in [O_APPEND] mode
    and fsync.  Used for the JSONL manifest; a crash mid-append leaves
    at most one malformed final line, which readers skip. *)

val read_file : string -> string option
(** Whole-file read; [None] if the file cannot be opened. *)

val remove_if_exists : string -> unit

val remove_tree : string -> unit
(** Recursive best-effort delete of a file or directory. *)

val fsync_channel : out_channel -> unit
(** Flush then fsync (best-effort) an output channel. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory entry (after a rename). *)
