(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]): the
    per-record checksum of every on-disk format in this library.

    Standard check value: [digest "123456789" = 0xCBF43926l]. *)

val digest : string -> int32

val digest_sub : string -> pos:int -> len:int -> int32
(** Checksum of the substring [\[pos, pos+len)].
    @raise Invalid_argument on an out-of-bounds range. *)
