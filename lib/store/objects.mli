(** Content-addressed on-disk object store with a JSONL manifest.

    Objects live at [objects/<aa>/<digest>] (MD5 of the bytes, sharded
    by the first two hex chars); the manifest maps cache keys to
    content digests, one JSON object per line.  Publishes are atomic
    (tmp file + [rename], fsynced manifest append), reads verify the
    content address and quarantine anything that fails — a corrupted
    object is a {e miss}, never a wrong answer.  See DESIGN.md
    "Result store". *)

type t

type entry = {
  key : string;  (** cache key ({!Key.derive}) *)
  digest : string;  (** content address (MD5 hex of the bytes) *)
  size : int;
  time : float;  (** publish time (epoch seconds) *)
  meta : (string * string) list;  (** human-readable key components *)
}

val default_dir : string
(** [".ephemeral-store"]. *)

val open_ : dir:string -> t
(** Create the layout if missing and load the manifest.  Malformed
    (e.g. crash-truncated) manifest lines are skipped. *)

val dir : t -> string

val entries : t -> entry list
(** Every manifest line in publish order (oldest first); the last
    entry for a key is the live one. *)

val find : t -> key:string -> entry option
(** The live entry for [key], without touching the object. *)

val get : t -> key:string -> (string * entry) option
(** Read and verify the object bound to [key].  [None] if the key is
    unbound, the object file is gone, or its bytes no longer match the
    content address — in the last case the file is moved to
    [quarantine/] first so a subsequent {!put} repopulates it. *)

val put : t -> key:string -> meta:(string * string) list -> string -> entry
(** Publish bytes under [key]: write the object atomically (skipped if
    the address already holds intact identical content), append a
    manifest line, and return the entry.  Bumps the
    ["store.bytes_written"] counter when telemetry is on. *)

val quarantine : t -> entry -> unit
(** Move an entry's object into [quarantine/] (used by callers whose
    payload-level decode failed, e.g. a bad codec CRC). *)

val object_path : t -> digest:string -> string

(** {2 Maintenance hooks (used by {!Gc})} *)

val rewrite_manifest : t -> entry list -> unit
(** Atomically replace the manifest with exactly [kept] (chronological
    order) and reload the in-memory index. *)

val delete_object : t -> digest:string -> unit

val object_digests_on_disk : t -> string list

val quarantine_dir : t -> string
val manifest_path : t -> string
