(* Incremental trial-chunk checkpointing, layered under Sim.Runner.

   Soundness rests on PR 2's determinism contract: every trial's RNG
   stream is pre-split ([Rng.split_n]) and position-independent, so
   trial i computes the same value whether it runs today or in a
   resumed process tomorrow — persisting completed chunks and
   re-loading them is indistinguishable from recomputing them.

   A *context* is activated around one experiment run (keyed by the
   same digest as its store key, which embeds the code fingerprint —
   a rebuilt binary never loads a stale chunk).  Each top-level
   [Runner.map] call claims the next *slot* (a deterministic call
   counter): the interrupted and the resumed run see identical call
   sequences, so slot k always names the same map call.

   Chunk files are written atomically and framed with a magic header,
   the chunk's bounds, a length prefix and a CRC-32; anything
   malformed loads as [None] (and is deleted) so the chunk is simply
   recomputed.  Values travel via [Marshal]: chunks are transient,
   machine-local artifacts read only by the same build that wrote
   them (the fingerprint-keyed directory guarantees it), unlike store
   objects, which use the versioned [Codec]. *)

let magic = "EPHC"
let format_version = 1

type ctx = { dir : string; calls : int ref }

let current : ctx option ref = ref None

let context_dir ~dir ~run_key =
  Filename.concat (Filename.concat dir "checkpoints") run_key

let activate ~dir ~run_key =
  let d = context_dir ~dir ~run_key in
  Fsio.ensure_dir d;
  current := Some { dir = d; calls = ref 0 }

let deactivate () = current := None
let active () = Option.is_some !current

type slot = { slot_dir : string; call : int; trials : int }

let next_slot ~trials =
  match !current with
  | None -> None
  | Some c ->
    let call = !(c.calls) in
    c.calls := call + 1;
    Some { slot_dir = c.dir; call; trials }

(* <= 16 chunks per map call: coarse enough that chunk I/O is noise,
   fine enough that an interrupted run salvages most finished work.
   Purely a function of [trials], so chunk bounds agree across job
   counts and across the interrupted/resumed pair. *)
let chunk_size ~trials = Stdlib.max 1 ((trials + 15) / 16)

let chunk_path slot ~lo ~hi =
  Filename.concat slot.slot_dir
    (Printf.sprintf "call%d_t%d_%d_%d.ck" slot.call slot.trials lo hi)

let encode_chunk ~lo ~hi payload =
  let buf = Buffer.create (String.length payload + 32) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf format_version;
  Buffer.add_int64_le buf (Int64.of_int lo);
  Buffer.add_int64_le buf (Int64.of_int hi);
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload;
  Buffer.add_int32_le buf (Crc32.digest (Buffer.contents buf));
  Buffer.contents buf

let header_len = 4 + 1 + 8 + 8 + 4

let decode_chunk ~lo ~hi data =
  let total = String.length data in
  if
    total >= header_len + 4
    && String.sub data 0 4 = magic
    && Char.code data.[4] = format_version
    && Int64.to_int (String.get_int64_le data 5) = lo
    && Int64.to_int (String.get_int64_le data 13) = hi
    && Int32.to_int (String.get_int32_le data 21) land 0xFFFFFFFF
       = total - header_len - 4
    && String.get_int32_le data (total - 4)
       = Crc32.digest_sub data ~pos:0 ~len:(total - 4)
  then Some (String.sub data header_len (total - header_len - 4))
  else None

let instrumented name f =
  if not (Obs.Control.enabled ()) then f ()
  else
    Obs.Span.with_span name (fun () ->
        Obs.Metrics.incr (Obs.Metrics.counter ("store." ^ name));
        f ())

let save_chunk slot ~lo ~hi values =
  if Fsio.degraded () then () (* persisting is an optimization; skip *)
  else
    match Marshal.to_string values [] with
    | exception _ -> () (* unmarshalable payload: silently not resumable *)
    | payload ->
      instrumented "ckpt.save" (fun () ->
          let framed = encode_chunk ~lo ~hi payload in
          match Fsio.write_atomic (chunk_path slot ~lo ~hi) framed with
          | () ->
            if Obs.Control.enabled () then
              Obs.Metrics.add
                (Obs.Metrics.counter "store.bytes_written")
                (String.length framed)
          | exception Sys_error _ ->
            (* Checkpointing must never fail the run it is trying to
               protect: a persistent write failure just means this run
               is not resumable from here on. *)
            Fsio.degrade ~what:"checkpoint chunk")

let load_chunk slot ~lo ~hi =
  let path = chunk_path slot ~lo ~hi in
  match Fsio.read_file path with
  | None -> None
  | Some data ->
    instrumented "ckpt.load" (fun () ->
        match decode_chunk ~lo ~hi data with
        | Some payload ->
          (match Marshal.from_string payload 0 with
          | values -> Some values
          | exception _ ->
            Fsio.remove_if_exists path;
            None)
        | None ->
          (* Truncated / bit-flipped / stale chunk: recompute it. *)
          Fsio.remove_if_exists path;
          None)

let clean ~dir ~run_key = Fsio.remove_tree (context_dir ~dir ~run_key)

let pending_chunks ~dir ~run_key =
  match Sys.readdir (context_dir ~dir ~run_key) with
  | exception Sys_error _ -> 0
  | files -> Array.length files
