(** Size/age-bounded garbage collection over an object store.

    Keeps the newest entry per key, drops entries older than
    [max_age_s], then keeps newest-first while cumulative object size
    fits [max_bytes]; unreferenced objects are deleted, the quarantine
    emptied, and the manifest atomically compacted.  Run via
    [ephemeral store gc]. *)

type stats = {
  examined : int;  (** manifest entries before the sweep *)
  kept : int;
  removed_entries : int;
  removed_objects : int;  (** object files deleted from disk *)
  bytes_kept : int;
  bytes_removed : int;  (** manifest-accounted bytes dropped *)
}

val run : ?max_bytes:int -> ?max_age_s:float -> ?now:float -> Objects.t -> stats
(** [now] overrides the wall clock (tests). *)
