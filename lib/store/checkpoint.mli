(** Incremental trial-chunk checkpointing with crash-safe resume.

    [Sim.Runner.map] persists completed chunks of trial results as
    they finish (when a context is active) and, in a restarted run,
    loads them back and executes only the missing trial indices.
    This is sound because each trial's RNG stream is pre-split and
    position-independent (the PR 2 determinism contract): a loaded
    value is bit-identical to the value recomputation would produce.

    A context is keyed by the experiment's store key — which embeds
    the build-time code fingerprint — so a different seed, scale or
    binary never resumes from stale chunks.  Chunk files are written
    atomically and carry a magic header, bounds, length prefix and
    CRC-32; malformed ones load as [None] (and are removed), which
    just means those trials recompute.

    The context is process-global and consulted only by top-level
    (non-nested) [Runner.map] calls, whose sequence is deterministic:
    slot [k] in the resumed run is the same map call as slot [k] in
    the interrupted one. *)

val activate : dir:string -> run_key:string -> unit
(** Arm checkpointing under [<dir>/checkpoints/<run_key>/], resetting
    the call counter.  [dir] is the store directory. *)

val deactivate : unit -> unit
val active : unit -> bool

type slot
(** One top-level [Runner.map] call within an active context. *)

val next_slot : trials:int -> slot option
(** Claim the next call slot; [None] when no context is active.  Must
    be called exactly once per top-level map call, in execution order
    (which is deterministic for a fixed experiment). *)

val chunk_size : trials:int -> int
(** Deterministic function of [trials] only (≤ 16 chunks per call),
    so chunk bounds agree at every [--jobs] value and across the
    interrupted/resumed pair. *)

val save_chunk : slot -> lo:int -> hi:int -> 'a array -> unit
(** Persist the results of trials [\[lo, hi)] atomically.  Wrapped in
    an Obs span (["ckpt.save"]) and counted when telemetry is on; a
    value [Marshal] cannot serialize is skipped silently (that chunk
    is simply not resumable). *)

val load_chunk : slot -> lo:int -> hi:int -> 'a array option
(** The persisted results of trials [\[lo, hi)], or [None] if absent,
    truncated, bit-flipped or stale (such files are deleted so the
    trials recompute).  Wrapped in an Obs span (["ckpt.load"]). *)

val clean : dir:string -> run_key:string -> unit
(** Drop a run's checkpoint directory (called after its outcome is
    complete). *)

val pending_chunks : dir:string -> run_key:string -> int
(** How many chunk files a run has on disk (0 if none). *)
