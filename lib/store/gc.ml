(* Size/age-bounded garbage collection.

   Policy, applied to the manifest's *live* entries (the newest entry
   per key; superseded entries are garbage by definition):

     1. drop entries older than [max_age_s];
     2. walking the survivors newest-first, keep entries while the
        cumulative object size stays within [max_bytes];
     3. delete every on-disk object no kept entry references (content
        addressing means two keys can share an object — it survives
        while either does), empty the quarantine, and atomically
        rewrite the manifest with only the kept entries.

   With neither bound given, gc still compacts superseded manifest
   entries and clears the quarantine. *)

type stats = {
  examined : int;
  kept : int;
  removed_entries : int;
  removed_objects : int;
  bytes_kept : int;
  bytes_removed : int;
}

let run ?max_bytes ?max_age_s ?now store =
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  let all = Objects.entries store in
  let examined = List.length all in
  (* Newest entry per key; [all] is chronological, so later wins. *)
  let live = Hashtbl.create 64 in
  List.iter (fun (e : Objects.entry) -> Hashtbl.replace live e.key e) all;
  let live_entries =
    List.filter
      (fun (e : Objects.entry) ->
        match Hashtbl.find_opt live e.key with
        | Some live_e -> live_e == e
        | None -> false)
      all
  in
  let young =
    match max_age_s with
    | None -> live_entries
    | Some age ->
      List.filter (fun (e : Objects.entry) -> now -. e.time <= age) live_entries
  in
  let kept =
    match max_bytes with
    | None -> young
    | Some budget ->
      (* Newest first, cumulative size within budget. *)
      let newest_first = List.rev young in
      let total = ref 0 in
      let kept_rev =
        List.filter
          (fun (e : Objects.entry) ->
            if !total + e.size <= budget then begin
              total := !total + e.size;
              true
            end
            else false)
          newest_first
      in
      List.rev kept_rev
  in
  let referenced = Hashtbl.create 64 in
  List.iter (fun (e : Objects.entry) -> Hashtbl.replace referenced e.digest ()) kept;
  let removed_objects = ref 0 in
  List.iter
    (fun digest ->
      if not (Hashtbl.mem referenced digest) then begin
        Objects.delete_object store ~digest;
        incr removed_objects
      end)
    (Objects.object_digests_on_disk store);
  Fsio.remove_tree (Objects.quarantine_dir store);
  Objects.rewrite_manifest store kept;
  let sum es = List.fold_left (fun acc (e : Objects.entry) -> acc + e.size) 0 es in
  let bytes_kept = sum kept in
  {
    examined;
    kept = List.length kept;
    removed_entries = examined - List.length kept;
    removed_objects = !removed_objects;
    bytes_kept;
    bytes_removed = sum all - bytes_kept;
  }
