(** Versioned, dependency-free binary serialization for stored results.

    Every encoded object is one self-describing record: a magic header
    (["EPHS"]), a format-version byte, a kind byte, a length-prefixed
    payload and a trailing CRC-32 over everything before it.  Decoding
    verifies all five, so a stale, truncated or bit-flipped object is
    {e rejected} with an [Error] — callers treat that as a cache miss —
    never misparsed.

    Floats travel as IEEE-754 bit patterns: NaN payloads, infinities
    and signed zeros round-trip exactly, which is what makes a decoded
    table render (ASCII, CSV, Markdown) byte-identically to the
    original. *)

val magic : string
(** ["EPHS"]. *)

val format_version : int
(** Bumped on any incompatible layout change; old objects then decode
    to [Error _] and are repopulated. *)

type outcome = {
  tables : Stats.Table.t list;
  notes : string list;
  plots : string list;
}
(** Structural mirror of [Sim.Outcome.t] (the store cannot depend on
    [sim], which sits above it); [Sim.Cache] converts. *)

val encode_summary : Stats.Summary.t -> string
val decode_summary : string -> (Stats.Summary.t, string) result

val encode_table : Stats.Table.t -> string
val decode_table : string -> (Stats.Table.t, string) result

val encode_outcome : outcome -> string
val decode_outcome : string -> (outcome, string) result
