(* Versioned, dependency-free binary serialization for the result
   store.

   Every encoded object is one self-describing record:

     offset 0   magic "EPHS"            (4 bytes)
     offset 4   format version          (u8)
     offset 5   kind                    (u8: 1 summary, 2 table, 3 outcome)
     offset 6   payload length          (u32 LE)
     offset 10  payload                 (length bytes)
     end        CRC-32 of bytes [0, 10+length)   (u32 LE)

   Floats are stored as their IEEE-754 bit patterns, so NaN payloads,
   infinities and signed zeros round-trip exactly — decoded tables
   render byte-identically to the originals.  A version bump changes
   the header, so stale objects are *rejected* (a cache miss), never
   misparsed. *)

let magic = "EPHS"
let format_version = 1

let kind_summary = 1
let kind_table = 2
let kind_outcome = 3

type outcome = {
  tables : Stats.Table.t list;
  notes : string list;
  plots : string list;
}

(* ------------------------------------------------------------------ *)
(* Writers *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xFF)
let w_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let w_f64 buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_list buf w items =
  w_u32 buf (List.length items);
  List.iter (w buf) items

let w_cell buf = function
  | Stats.Table.Int i ->
    w_u8 buf 0;
    w_i64 buf i
  | Stats.Table.Float (x, decimals) ->
    w_u8 buf 1;
    w_f64 buf x;
    w_u32 buf decimals
  | Stats.Table.Str s ->
    w_u8 buf 2;
    w_str buf s
  | Stats.Table.Pct x ->
    w_u8 buf 3;
    w_f64 buf x

let w_summary buf s =
  let r = Stats.Summary.to_raw s in
  w_i64 buf r.n;
  w_f64 buf r.mean;
  w_f64 buf r.m2;
  w_f64 buf r.min;
  w_f64 buf r.max;
  w_f64 buf r.total

let w_table buf t =
  w_str buf (Stats.Table.title t);
  w_list buf w_str (Stats.Table.columns t);
  w_list buf (fun buf row -> w_list buf w_cell row) (Stats.Table.rows t)

let w_outcome buf (o : outcome) =
  w_list buf w_table o.tables;
  w_list buf w_str o.notes;
  w_list buf w_str o.plots

(* ------------------------------------------------------------------ *)
(* Framing *)

let frame ~kind payload =
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  w_u8 buf format_version;
  w_u8 buf kind;
  w_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  let crc = Crc32.digest (Buffer.contents buf) in
  Buffer.add_int32_le buf crc;
  Buffer.contents buf

let encode ~kind write v =
  let payload = Buffer.create 1024 in
  write payload v;
  frame ~kind (Buffer.contents payload)

(* ------------------------------------------------------------------ *)
(* Readers *)

exception Bad of string

type reader = { s : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.s then raise (Bad "truncated payload")

let r_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.s r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_str r =
  let len = r_u32 r in
  need r len;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let r_list r read =
  let count = r_u32 r in
  if count > String.length r.s then raise (Bad "implausible list length");
  List.init count (fun _ -> read r)

let r_cell r =
  match r_u8 r with
  | 0 -> Stats.Table.Int (r_i64 r)
  | 1 ->
    let x = r_f64 r in
    let decimals = r_u32 r in
    Stats.Table.Float (x, decimals)
  | 2 -> Stats.Table.Str (r_str r)
  | 3 -> Stats.Table.Pct (r_f64 r)
  | tag -> raise (Bad (Printf.sprintf "unknown cell tag %d" tag))

let r_summary r =
  let n = r_i64 r in
  let mean = r_f64 r in
  let m2 = r_f64 r in
  let min = r_f64 r in
  let max = r_f64 r in
  let total = r_f64 r in
  Stats.Summary.of_raw { n; mean; m2; min; max; total }

let r_table r =
  let title = r_str r in
  let columns = r_list r r_str in
  let table = Stats.Table.create ~title ~columns in
  let rows = r_list r (fun r -> r_list r r_cell) in
  (try List.iter (Stats.Table.add_row table) rows with
  | Invalid_argument msg -> raise (Bad msg));
  table

let r_outcome r =
  let tables = r_list r r_table in
  let notes = r_list r r_str in
  let plots = r_list r r_str in
  { tables; notes; plots }

let header_len = 10 (* magic + version + kind + payload length *)

let unframe ~kind s =
  let total = String.length s in
  if total < header_len + 4 then raise (Bad "object shorter than header");
  if String.sub s 0 4 <> magic then raise (Bad "bad magic");
  let r = { s; pos = 4 } in
  let version = r_u8 r in
  if version <> format_version then
    raise (Bad (Printf.sprintf "stale format version %d (want %d)" version format_version));
  let k = r_u8 r in
  if k <> kind then raise (Bad (Printf.sprintf "kind %d where %d expected" k kind));
  let len = r_u32 r in
  if len <> total - header_len - 4 then raise (Bad "length mismatch");
  let stored =
    Int32.to_int (String.get_int32_le s (total - 4)) land 0xFFFFFFFF
  in
  let actual =
    Int32.to_int (Crc32.digest_sub s ~pos:0 ~len:(total - 4)) land 0xFFFFFFFF
  in
  if stored <> actual then raise (Bad "CRC mismatch");
  { s = String.sub s header_len len; pos = 0 }

let decode ~kind read s =
  match
    let r = unframe ~kind s in
    let v = read r in
    if r.pos <> String.length r.s then raise (Bad "trailing payload bytes");
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Public API *)

let encode_summary s = encode ~kind:kind_summary w_summary s
let decode_summary s = decode ~kind:kind_summary r_summary s
let encode_table t = encode ~kind:kind_table w_table t
let decode_table s = decode ~kind:kind_table r_table s
let encode_outcome o = encode ~kind:kind_outcome w_outcome o
let decode_outcome s = decode ~kind:kind_outcome r_outcome s
