(* Crash-safe filesystem primitives shared by the whole store layer:
   every file the store publishes goes through [write_atomic], so a
   reader never observes a half-written object, checkpoint chunk,
   manifest, CSV or Markdown table — it sees the old content (or
   nothing) until the rename, then the new content.

   Both write paths retry transient failures a bounded number of times
   with capped backoff (counted in "store.io_retries") before
   re-raising; [Fault.Inject.io_write] is consulted per attempt so a
   chaos plan can exercise exactly this machinery, torn partial files
   included.  Callers for whom persistence is an optimization (cache
   publishes, checkpoint chunks) consult [degraded] / call [degrade]
   to switch the store off for the rest of the run after a persistent
   failure, rather than failing the computation. *)

(* mkdir -p: create every missing component, tolerating races with a
   concurrent creator. *)
let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
  end

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with
  | Unix.Unix_error _ -> ()

(* Durability of the rename itself needs the directory entry flushed;
   best-effort, since some filesystems refuse fsync on a directory. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

(* ------------------------------------------------------------------ *)
(* Degraded mode: after a persistent write failure, callers that treat
   the store as an optimization stop touching it for the rest of the
   run.  One process-wide latch; flipping it warns once. *)

let degraded_flag = Atomic.make false

let degraded () = Atomic.get degraded_flag

let degrade ~what =
  if not (Atomic.exchange degraded_flag true) then begin
    Obs.Metrics.incr (Obs.Metrics.counter "store.degraded");
    Obs.Log.warn_once "store.degraded"
      "store degraded to cache-off after a persistent IO failure (%s); \
       results from here on are computed but not persisted"
      what
  end

let reset_degraded () = Atomic.set degraded_flag false

(* ------------------------------------------------------------------ *)
(* Retry plumbing shared by both write paths. *)

let io_retryable = function
  | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let io_retried _k _e = Obs.Metrics.incr (Obs.Metrics.counter "store.io_retries")

(* Consult the fault plane for this write attempt; a torn decision
   leaves the partial bytes a crash would have left before raising. *)
let inject_write ~path ~attempt ~on_torn =
  match Fault.Inject.io_write ~path ~attempt with
  | Fault.Inject.Io_ok -> ()
  | Fault.Inject.Io_error { message; torn } ->
    if torn then (try on_torn () with Sys_error _ -> ());
    raise (Sys_error (path ^ ": " ^ message))

let write_atomic_once path data ~attempt =
  ensure_dir (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  inject_write ~path ~attempt ~on_torn:(fun () ->
      (* A torn publish dies after writing part of the tmp file; the
         next attempt (or run) simply overwrites it. *)
      let oc = open_out_bin tmp in
      output_string oc (String.sub data 0 (String.length data / 2));
      close_out_noerr oc);
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let write_atomic path data =
  Fault.Retry.with_backoff ~retryable:io_retryable ~on_retry:io_retried
    (fun attempt -> write_atomic_once path data ~attempt)

let append_line_once path line ~attempt =
  ensure_dir (Filename.dirname path);
  inject_write ~path ~attempt ~on_torn:(fun () ->
      (* A torn append dies mid-line: half the bytes, no newline.  The
         manifest loader skips (and counts) the malformed line. *)
      let oc =
        open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
          path
      in
      output_string oc (String.sub line 0 (String.length line / 2));
      close_out_noerr oc);
  let created = not (Sys.file_exists path) in
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
  in
  (try
     (* A retry may follow a torn attempt; the newline terminates any
        partial line so the good line stays parseable (readers skip
        the resulting blank or malformed fragment). *)
     if attempt > 0 then output_char oc '\n';
     output_string oc line;
     output_char oc '\n';
     fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  (* First append creates the file: flush the directory entry too, as
     write_atomic does after its rename. *)
  if created then fsync_dir (Filename.dirname path)

let append_line path line =
  Fault.Retry.with_backoff ~retryable:io_retryable ~on_retry:io_retried
    (fun attempt -> append_line_once path line ~attempt)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Some data
  | exception Sys_error _ -> None

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let rec remove_tree path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | false -> remove_if_exists path
  | true ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Sys.rmdir path with Sys_error _ -> ())
