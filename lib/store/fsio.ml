(* Crash-safe filesystem primitives shared by the whole store layer:
   every file the store publishes goes through [write_atomic], so a
   reader never observes a half-written object, checkpoint chunk,
   manifest, CSV or Markdown table — it sees the old content (or
   nothing) until the rename, then the new content. *)

(* mkdir -p: create every missing component, tolerating races with a
   concurrent creator. *)
let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Sys.mkdir dir 0o755 with
    | Sys_error _ when Sys.file_exists dir -> ()
  end

let fsync_channel oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with
  | Unix.Unix_error _ -> ()

(* Durability of the rename itself needs the directory entry flushed;
   best-effort, since some filesystems refuse fsync on a directory. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let write_atomic path data =
  ensure_dir (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let append_line path line =
  ensure_dir (Filename.dirname path);
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
  in
  (try
     output_string oc line;
     output_char oc '\n';
     fsync_channel oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Some data
  | exception Sys_error _ -> None

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let rec remove_tree path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | false -> remove_if_exists path
  | true ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (try Sys.readdir path with Sys_error _ -> [||]);
    (try Sys.rmdir path with Sys_error _ -> ())
