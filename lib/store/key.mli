(** Cache keys: what addresses an experiment outcome in the store.

    [derive] digests the experiment id, seed, quick flag (trial counts
    and sweep sizes are pure functions of it), the instance-backend
    tag (outcomes computed under one representation are never served
    to a run under another) and the build-time code fingerprint — so
    any input or code change invalidates cleanly (a miss, then
    repopulation), and equal keys provably name equal outcomes under
    the determinism contract of [Sim.Runner]. *)

val derive :
  exp_id:string -> seed:int -> quick:bool -> backend:string -> string
(** Hex digest; stable across processes and machines for the same
    build.  [backend] is the run's backend tag ([Sim.Backend.tag]):
    an opaque key component at this layer. *)

val fingerprint : unit -> string
(** The code fingerprint baked in at build time: a digest of every
    [.ml] source under [lib/] and [bin/] (plus the Obs clock C stub).
    Surfaced by [ephemeral version] and [ephemeral store ls] so users
    can tell why a cache missed. *)

val fingerprinted_sources : unit -> int
(** How many source files the fingerprint covers. *)

val meta :
  exp_id:string ->
  seed:int ->
  quick:bool ->
  backend:string ->
  (string * string) list
(** Human-readable key components, recorded in the manifest for
    [store ls]. *)
