(** Operator-facing warnings on stderr.

    Tables and traces go to stdout / the sink; warnings about degraded
    behaviour go here.  [warn_once] deduplicates by key so a warning
    fired from a per-trial or per-write path appears exactly once per
    process, however many times the path runs. *)

val warn : ('a, unit, string, unit) format4 -> 'a
(** [warn fmt ...]: one "warning: ..." line on stderr, flushed. *)

val warn_once : string -> ('a, unit, string, unit) format4 -> 'a
(** [warn_once key fmt ...]: like [warn], but only the first call per
    [key] (per process) prints.  Domain-safe. *)

val reset : unit -> unit
(** Forget which keys have fired (tests). *)
