(** Named metrics: counters, gauges, and log-scale histograms.

    Each kind lives in its own registry keyed by name; [counter],
    [gauge] and [histogram] are get-or-create, so independent call
    sites naming the same metric share one instrument.  Histograms
    bucket geometrically (8 sub-buckets per octave, relative error
    under ~4.5% per readout), so one fixed 512-slot array spans
    nanoseconds to hours with no reallocation on the hot path.

    {b Domain safety.}  Under the hood every domain owns a private
    shard ([Domain.DLS]) of instrument records, so updates
    ([incr]/[add]/[set]/[observe]) are unsynchronized domain-local
    writes; reads ([count], [value], [percentile], {!snapshot}) merge
    all shards — counters and histograms sum, a gauge keeps its most
    recently set value.  Handles are just names with a per-domain
    cache: create them anywhere and use them from any domain,
    including pool workers.

    Registration and updates are always live — cheap enough that the
    on/off decision belongs to the *instrumentation sites* (see
    {!Control}), not to every [incr].  Creating a handle registers the
    instrument immediately (in the creating domain's shard), so a
    declared metric shows up in {!snapshot} before its first update. *)

type counter
type gauge
type histogram

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

val histogram : string -> histogram
val observe : histogram -> float -> unit
(** Non-positive values land in the lowest bucket (still counted in
    [count]/min/max exactly). *)

val observations : histogram -> int

val percentile : histogram -> float -> float
(** [percentile h q] with [q] in [0, 1].  Exact at the extremes
    ([q <= 0] is the observed min, [q >= 1] the max); in between,
    geometric-midpoint readout of the bucket holding rank
    [ceil (q * count)].  [nan] on an empty histogram. *)

(** Snapshot of every registered metric, for export. *)

type histo_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histo_summary

val snapshot : unit -> (string * value_snapshot) list
(** All registered metrics merged across domain shards, sorted by name
    (counters, gauges then histograms on a name tie). *)

val reset : unit -> unit
(** Forget every registered metric in every shard (tests and repeated
    in-process runs). *)
