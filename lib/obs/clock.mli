(** Monotonic wall clock.

    Nanoseconds since an arbitrary (boot-time) epoch via
    [clock_gettime(CLOCK_MONOTONIC)]: real elapsed time, immune to NTP
    steps and never paused — unlike [Sys.time], which reports CPU time
    and undercounts anything that sleeps, waits on IO, or runs on other
    cores.  All timing in the repository goes through this module. *)

val now : unit -> int64
(** Current monotonic time in nanoseconds.  Only differences are
    meaningful. *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since:t0] is [now () - t0]. *)

val wall_s : unit -> float
(** [now] in seconds, for drop-in replacement of [Sys.time]-style
    timing code ([wall_s () -. start]). *)

val ns_to_ms : int64 -> float
val ns_to_s : int64 -> float
