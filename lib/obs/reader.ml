(* Strict JSONL trace parsing: the exact inverse of
   [Sink.record_to_json], field for field.

   Strictness is the point — the trace is a machine interface, and a
   reader that shrugs at a truncated or garbled line would silently
   drop data from every tool built on top (trace summary, flame,
   diff).  So: every field must be present exactly once, carry the
   right JSON type, parse into its OCaml type, and nothing may follow
   the closing brace.  The only tolerated variation is schema v1
   (records written before the "domain" field existed), which reads
   back with [domain = -1].

   The scanner is hand-rolled over the line (no dependency, no
   intermediate tree): a key/value loop collecting raw value tokens,
   then per-field conversion driven by the field name. *)

type error = { line : int; message : string }

exception Bad of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

(* A scanned value: a decoded string literal or the raw characters of
   a number token (converted per field below). *)
type value =
  | Vstring of string
  | Vnumber of string

let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | c -> fail "bad hex digit %C in \\u escape" c

let scan_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () =
    if !pos >= n then fail "truncated record" else String.unsafe_get line !pos
  in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then fail "expected %C at column %d" c (!pos + 1);
    advance ()
  in
  let scan_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            (hex_digit line.[!pos] lsl 12)
            lor (hex_digit line.[!pos + 1] lsl 8)
            lor (hex_digit line.[!pos + 2] lsl 4)
            lor hex_digit line.[!pos + 3]
          in
          pos := !pos + 4;
          (* The writer only escapes bytes; reject code points that
             cannot round-trip through one. *)
          if code > 0xFF then fail "\\u%04x is not a byte" code;
          Buffer.add_char buf (Char.chr code)
        | c -> fail "unknown escape \\%C" c);
        go ()
      | c when Char.code c < 0x20 ->
        fail "unescaped control character %C in string" c
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let scan_number () =
    let start = !pos in
    while
      !pos < n
      && (match String.unsafe_get line !pos with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      advance ()
    done;
    if !pos = start then fail "expected a value at column %d" (!pos + 1);
    String.sub line start (!pos - start)
  in
  expect '{';
  let fields = ref [] in
  let rec members () =
    let key = scan_string () in
    if List.mem_assoc key !fields then fail "duplicate field %S" key;
    expect ':';
    let v = if peek () = '"' then Vstring (scan_string ()) else Vnumber (scan_number ()) in
    fields := (key, v) :: !fields;
    match peek () with
    | ',' -> advance (); members ()
    | '}' -> advance ()
    | c -> fail "expected ',' or '}', got %C" c
  in
  (match peek () with
  | '}' -> advance () (* {} scans; field validation rejects it *)
  | _ -> members ());
  if !pos <> n then fail "trailing garbage after record";
  List.rev !fields

let v1_fields =
  [ "name"; "depth"; "start_ns"; "dur_ns"; "minor_words"; "major_words" ]

let parse line =
  match
    let fields = scan_fields line in
    List.iter
      (fun (k, _) ->
        if not (List.mem k ("domain" :: v1_fields)) then
          fail "unknown field %S" k)
      fields;
    let get k =
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> fail "missing field %S" k
    in
    let str k =
      match get k with
      | Vstring s -> s
      | Vnumber _ -> fail "field %S must be a string" k
    in
    let num k =
      match get k with
      | Vnumber tok -> tok
      | Vstring _ -> fail "field %S must be a number" k
    in
    let int_field k =
      match int_of_string_opt (num k) with
      | Some i -> i
      | None -> fail "field %S is not an integer" k
    in
    let int64_field k =
      match Int64.of_string_opt (num k) with
      | Some i -> i
      | None -> fail "field %S is not an integer" k
    in
    let float_field k =
      match float_of_string_opt (num k) with
      | Some f -> f
      | None -> fail "field %S is not a number" k
    in
    {
      Span.name = str "name";
      domain =
        (if List.mem_assoc "domain" fields then int_field "domain" else -1);
      depth = int_field "depth";
      start_ns = int64_field "start_ns";
      dur_ns = int64_field "dur_ns";
      minor_words = float_field "minor_words";
      major_words = float_field "major_words";
    }
  with
  | r -> Ok r
  | exception Bad msg -> Error msg

let fold_file path ~init ~f =
  match open_in path with
  | exception Sys_error msg -> Error { line = 0; message = msg }
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok acc
          | l -> (
            match parse l with
            | Ok r -> go (lineno + 1) (f acc r)
            | Error message -> Error { line = lineno; message })
        in
        go 1 init)

let read_file path =
  Result.map List.rev
    (fold_file path ~init:[] ~f:(fun acc r -> r :: acc))
