(* Offline trace analytics: everything here consumes a list of parsed
   span records (see Reader) and returns plain data — the CLI renders.

   The aggregate shape is Span.totals so `trace summary` over a trace
   file and the in-process --metrics table are the same computation on
   the same type: byte-compatible output through Export. *)

type agg = {
  mutable a_count : int;
  mutable a_total : int64;
  mutable a_minor : float;
  mutable a_major : float;
}

let totals records =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Span.record) ->
      match Hashtbl.find_opt tbl r.name with
      | Some a ->
        a.a_count <- a.a_count + 1;
        a.a_total <- Int64.add a.a_total r.dur_ns;
        a.a_minor <- a.a_minor +. r.minor_words;
        a.a_major <- a.a_major +. r.major_words
      | None ->
        Hashtbl.add tbl r.name
          {
            a_count = 1;
            a_total = r.dur_ns;
            a_minor = r.minor_words;
            a_major = r.major_words;
          })
    records;
  Hashtbl.fold
    (fun name a acc ->
      ( name,
        {
          Span.count = a.a_count;
          total_ns = a.a_total;
          minor_words = a.a_minor;
          major_words = a.a_major;
        } )
      :: acc)
    tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Folded stacks (flamegraph.pl / speedscope):  "a;b;c <self-ns>".

   Span paths are already full stacks, so folding is a rename plus
   self-time: a path's total minus the totals of its direct children.
   With concurrent children (trials of one experiment running on
   several domains at once) the children's wall time can exceed the
   parent's, so self time clamps at zero rather than going negative —
   flame tools reject negative sample counts. *)

let folded records =
  let t = totals records in
  let have = Hashtbl.create 64 in
  List.iter (fun (name, _) -> Hashtbl.replace have name ()) t;
  let child_sum : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (name, (tt : Span.totals)) ->
      match String.rindex_opt name '/' with
      | None -> ()
      | Some i ->
        let parent = String.sub name 0 i in
        if Hashtbl.mem have parent then
          let prev =
            Option.value (Hashtbl.find_opt child_sum parent) ~default:0L
          in
          Hashtbl.replace child_sum parent (Int64.add prev tt.total_ns))
    t;
  List.map
    (fun (name, (tt : Span.totals)) ->
      let self =
        Int64.sub tt.total_ns
          (Option.value (Hashtbl.find_opt child_sum name) ~default:0L)
      in
      let self = if Int64.compare self 0L < 0 then 0L else self in
      (String.map (fun c -> if c = '/' then ';' else c) name, self))
    t

(* ------------------------------------------------------------------ *)
(* Per-domain utilization and concurrency, from span intervals.

   A domain is "busy" while at least one of its spans is open: union
   its [start, start+dur) intervals.  The concurrency profile sweeps
   the merged intervals of all domains and measures how long exactly
   k domains were busy simultaneously — the observed parallelism of a
   -j N run. *)

type domain_row = { domain : int; spans : int; busy_ns : int64 }

type domain_stats = {
  rows : domain_row list;  (* sorted by domain id *)
  wall_ns : int64;  (* earliest span start to latest span end *)
  concurrency : (int * int64) list;  (* k -> ns with exactly k domains busy *)
}

(* Union of half-open intervals: sort by start, merge overlaps. *)
let merge_intervals ivs =
  let ivs = List.sort compare ivs in
  match ivs with
  | [] -> []
  | (s0, e0) :: rest ->
    let merged, last =
      List.fold_left
        (fun (acc, (cs, ce)) (s, e) ->
          if Int64.compare s ce <= 0 then
            (acc, (cs, if Int64.compare e ce > 0 then e else ce))
          else ((cs, ce) :: acc, (s, e)))
        ([], (s0, e0))
        rest
    in
    List.rev (last :: merged)

let domain_stats records =
  if records = [] then None
  else begin
    let by_domain : (int, (int64 * int64) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let counts : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let lo = ref Int64.max_int and hi = ref Int64.min_int in
    List.iter
      (fun (r : Span.record) ->
        let stop = Int64.add r.start_ns r.dur_ns in
        if Int64.compare r.start_ns !lo < 0 then lo := r.start_ns;
        if Int64.compare stop !hi > 0 then hi := stop;
        (match Hashtbl.find_opt by_domain r.domain with
        | Some l -> l := (r.start_ns, stop) :: !l
        | None -> Hashtbl.add by_domain r.domain (ref [ (r.start_ns, stop) ]));
        match Hashtbl.find_opt counts r.domain with
        | Some c -> incr c
        | None -> Hashtbl.add counts r.domain (ref 1))
      records;
    let merged : (int * (int64 * int64) list) list =
      Hashtbl.fold (fun d l acc -> (d, merge_intervals !l) :: acc) by_domain []
      |> List.sort compare
    in
    let rows =
      List.map
        (fun (d, ivs) ->
          let busy =
            List.fold_left
              (fun acc (s, e) -> Int64.add acc (Int64.sub e s))
              0L ivs
          in
          { domain = d; spans = !(Hashtbl.find counts d); busy_ns = busy })
        merged
    in
    (* Event sweep over the merged intervals of every domain: +1 at
       each start, -1 at each end, accumulate time per level. *)
    let events =
      List.concat_map
        (fun (_, ivs) ->
          List.concat_map (fun (s, e) -> [ (s, 1); (e, -1) ]) ivs)
        merged
      |> List.sort compare
    in
    let per_level : (int, int64) Hashtbl.t = Hashtbl.create 8 in
    let level = ref 0 in
    let prev = ref !lo in
    List.iter
      (fun (t, d) ->
        let dt = Int64.sub t !prev in
        if Int64.compare dt 0L > 0 then begin
          let prev_ns =
            Option.value (Hashtbl.find_opt per_level !level) ~default:0L
          in
          Hashtbl.replace per_level !level (Int64.add prev_ns dt)
        end;
        prev := t;
        level := !level + d)
      events;
    let concurrency =
      Hashtbl.fold (fun k ns acc -> (k, ns) :: acc) per_level []
      |> List.sort compare
    in
    Some { rows; wall_ns = Int64.sub !hi !lo; concurrency }
  end

(* ------------------------------------------------------------------ *)
(* Trace diff: per-path deltas between two runs, the CI regression
   gate behind `trace diff --fail-above`. *)

type diff_row = {
  path : string;
  old_t : Span.totals option;
  new_t : Span.totals option;
  wall_pct : float option;  (* None unless the path is in both runs *)
  alloc_pct : float option;
}

let alloc_words (t : Span.totals) = t.minor_words +. t.major_words

let pct_delta ~old_v ~new_v =
  if old_v > 0. then Some ((new_v -. old_v) /. old_v *. 100.) else None

let diff old_totals new_totals =
  let paths =
    List.sort_uniq compare
      (List.map fst old_totals @ List.map fst new_totals)
  in
  List.map
    (fun path ->
      let old_t = List.assoc_opt path old_totals in
      let new_t = List.assoc_opt path new_totals in
      let wall_pct, alloc_pct =
        match (old_t, new_t) with
        | Some o, Some n ->
          ( pct_delta
              ~old_v:(Int64.to_float o.Span.total_ns)
              ~new_v:(Int64.to_float n.Span.total_ns),
            pct_delta ~old_v:(alloc_words o) ~new_v:(alloc_words n) )
        | _ -> (None, None)
      in
      { path; old_t; new_t; wall_pct; alloc_pct })
    paths

(* The gate value: worst wall regression over the paths present in
   both runs; neg_infinity when nothing is comparable. *)
let worst_wall_pct rows =
  List.fold_left
    (fun acc row ->
      match row.wall_pct with
      | Some p when p > acc -> p
      | _ -> acc)
    Float.neg_infinity rows
