module Table = Stats.Table

(* One renderer for both sources of span aggregates: the in-process
   table ([--metrics]) and a parsed trace file ([trace summary]) —
   same totals, byte-identical table. *)
let span_table_of ?(title = "Observability: spans") totals =
  let table =
    Table.create ~title
      ~columns:
        [ "span"; "count"; "total ms"; "mean ms"; "minor words"; "major words" ]
  in
  List.iter
    (fun (name, (t : Span.totals)) ->
      let total_ms = Clock.ns_to_ms t.total_ns in
      Table.add_row table
        [
          Str name;
          Int t.count;
          Float (total_ms, 2);
          Float (total_ms /. float_of_int (Stdlib.max 1 t.count), 4);
          Float (t.minor_words, 0);
          Float (t.major_words, 0);
        ])
    totals;
  table

let span_table () = span_table_of (Span.totals ())

let metrics_table () =
  let table =
    Table.create ~title:"Observability: metrics"
      ~columns:[ "metric"; "kind"; "value"; "p50"; "p90"; "p99" ]
  in
  let dash = Table.Str "-" in
  List.iter
    (fun (name, v) ->
      match (v : Metrics.value_snapshot) with
      | Counter_v n ->
        Table.add_row table [ Str name; Str "counter"; Int n; dash; dash; dash ]
      | Gauge_v x ->
        Table.add_row table
          [ Str name; Str "gauge"; Float (x, 3); dash; dash; dash ]
      | Histogram_v h ->
        (* A registered-but-empty histogram has no percentiles: render
           dashes, not nan. *)
        let pcti x = if h.h_count = 0 then dash else Table.Float (x, 3) in
        Table.add_row table
          [
            Str name;
            Str "histogram";
            Str (Printf.sprintf "n=%d sum=%.3g" h.h_count h.h_sum);
            pcti h.p50;
            pcti h.p90;
            pcti h.p99;
          ])
    (Metrics.snapshot ());
  table

let print_summary () =
  print_string (Table.to_ascii (span_table ()));
  if Metrics.snapshot () <> [] then begin
    print_newline ();
    print_string (Table.to_ascii (metrics_table ()))
  end
