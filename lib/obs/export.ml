module Table = Stats.Table

let span_table () =
  let table =
    Table.create ~title:"Observability: spans"
      ~columns:
        [ "span"; "count"; "total ms"; "mean ms"; "minor words"; "major words" ]
  in
  List.iter
    (fun (name, (t : Span.totals)) ->
      let total_ms = Clock.ns_to_ms t.total_ns in
      Table.add_row table
        [
          Str name;
          Int t.count;
          Float (total_ms, 2);
          Float (total_ms /. float_of_int (Stdlib.max 1 t.count), 4);
          Float (t.minor_words, 0);
          Float (t.major_words, 0);
        ])
    (Span.totals ());
  table

let metrics_table () =
  let table =
    Table.create ~title:"Observability: metrics"
      ~columns:[ "metric"; "kind"; "value"; "p50"; "p90"; "p99" ]
  in
  let dash = Table.Str "-" in
  List.iter
    (fun (name, v) ->
      match (v : Metrics.value_snapshot) with
      | Counter_v n ->
        Table.add_row table [ Str name; Str "counter"; Int n; dash; dash; dash ]
      | Gauge_v x ->
        Table.add_row table
          [ Str name; Str "gauge"; Float (x, 3); dash; dash; dash ]
      | Histogram_v h ->
        Table.add_row table
          [
            Str name;
            Str "histogram";
            Str (Printf.sprintf "n=%d sum=%.3g" h.h_count h.h_sum);
            Float (h.p50, 3);
            Float (h.p90, 3);
            Float (h.p99, 3);
          ])
    (Metrics.snapshot ());
  table

let print_summary () =
  print_string (Table.to_ascii (span_table ()));
  if Metrics.snapshot () <> [] then begin
    print_newline ();
    print_string (Table.to_ascii (metrics_table ()))
  end
