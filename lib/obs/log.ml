(* Rate-limited operator warnings.  Degradation paths (store falling
   back to cache-off, a malformed EPHEMERAL_JOBS, a poisoned worker)
   must tell the operator once — not once per trial, which under a
   fault plan could mean thousands of identical lines drowning the
   tables. *)

let m = Mutex.create ()
let seen : (string, unit) Hashtbl.t = Hashtbl.create 8

let warn_once key fmt =
  Printf.ksprintf
    (fun msg ->
      Mutex.lock m;
      let fresh = not (Hashtbl.mem seen key) in
      if fresh then Hashtbl.add seen key ();
      Mutex.unlock m;
      if fresh then Printf.eprintf "warning: %s\n%!" msg)
    fmt

let warn fmt = Printf.ksprintf (fun msg -> Printf.eprintf "warning: %s\n%!" msg) fmt

let reset () =
  Mutex.lock m;
  Hashtbl.reset seen;
  Mutex.unlock m
