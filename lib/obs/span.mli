(** Nested span tracing on the monotonic clock, with GC deltas.

    [with_span "trial" f] times [f] and captures how many minor- and
    major-heap words it allocated ([Gc.quick_stat] deltas).  Spans
    nest: a span opened inside another records its full path
    ("e1/trial"), so one instrumentation site in a generic driver
    yields per-caller breakdowns for free.

    {b Domain safety.}  The nesting stack is domain-local
    ([Domain.DLS]), so spans opened concurrently in pool workers nest
    independently; the aggregate table and the handler list are shared
    and mutex-guarded, with handlers invoked under the lock (one
    completed span at a time — the JSONL sink needs no locking of its
    own for ordering).  A pool worker inherits the submitting domain's
    innermost span via {!context}/{!with_context}, so a trial span
    records the same "e1/n=64/trial" path at any job count.

    When {!Control.enabled} is off, [with_span] is [f ()] — one branch,
    no clock read, no allocation.  When on, each closing span feeds the
    in-process aggregate table (read by {!Export}) and every handler
    registered with {!on_record} (the JSONL sink). *)

type record = {
  name : string;  (** full slash-joined path, e.g. ["e1/trial"] *)
  domain : int;  (** id of the domain the span closed on ([Domain.self]) *)
  depth : int;  (** 0 for a root span *)
  start_ns : int64;  (** {!Clock.now} at open *)
  dur_ns : int64;
  minor_words : float;  (** words allocated in the minor heap inside the span *)
  major_words : float;
}

val with_span : string -> (unit -> 'a) -> 'a
(** Exceptions propagate; the span still closes and records. *)

val on_record : (record -> unit) -> unit
(** Register a handler called with each completed span (innermost
    first, since children close before their parent). *)

val clear_handlers : unit -> unit

(** {2 Cross-domain context} *)

val context : unit -> (string * int) option
(** The calling domain's innermost open span as [(path, depth)], or
    [None] outside any span.  Capture it before handing work to
    another domain. *)

val with_context : (string * int) option -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with [ctx] installed as the ambient
    parent span, so spans opened by [f] extend [ctx]'s path; restores
    the previous stack afterwards.  [with_context None f] is [f ()]. *)

(** {2 Aggregates, accumulated whenever tracing is enabled} *)

type totals = {
  count : int;
  total_ns : int64;
  minor_words : float;
  major_words : float;
}

val totals : unit -> (string * totals) list
(** Per-span-path aggregate over the whole run, sorted by path. *)

val reset : unit -> unit
(** Drop aggregates and the calling domain's dangling nesting state
    (not handlers). *)
