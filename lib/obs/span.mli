(** Nested span tracing on the monotonic clock, with GC deltas.

    [with_span "trial" f] times [f] and captures how many minor- and
    major-heap words it allocated ([Gc.quick_stat] deltas).  Spans
    nest: a span opened inside another records its full path
    ("e1/trial"), so one instrumentation site in a generic driver
    yields per-caller breakdowns for free.

    When {!Control.enabled} is off, [with_span] is [f ()] — one branch,
    no clock read, no allocation.  When on, each closing span feeds the
    in-process aggregate table (read by {!Export}) and every handler
    registered with {!on_record} (the JSONL sink). *)

type record = {
  name : string;  (** full slash-joined path, e.g. ["e1/trial"] *)
  depth : int;  (** 0 for a root span *)
  start_ns : int64;  (** {!Clock.now} at open *)
  dur_ns : int64;
  minor_words : float;  (** words allocated in the minor heap inside the span *)
  major_words : float;
}

val with_span : string -> (unit -> 'a) -> 'a
(** Exceptions propagate; the span still closes and records. *)

val on_record : (record -> unit) -> unit
(** Register a handler called with each completed span (innermost
    first, since children close before their parent). *)

val clear_handlers : unit -> unit

(** Aggregates, accumulated whenever tracing is enabled. *)

type totals = {
  count : int;
  total_ns : int64;
  minor_words : float;
  major_words : float;
}

val totals : unit -> (string * totals) list
(** Per-span-path aggregate over the whole run, sorted by path. *)

val reset : unit -> unit
(** Drop aggregates and any dangling nesting state (not handlers). *)
