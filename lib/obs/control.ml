(* Atomic so the flag is read coherently from pool worker domains; it
   is set once at startup, so every read after that is a cache hit. *)
let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b
