external now : unit -> int64 = "obs_clock_monotonic_ns"

let elapsed_ns ~since = Int64.sub (now ()) since
let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_s ns = Int64.to_float ns /. 1e9
let wall_s () = ns_to_s (now ())
