(** Global on/off switch for the telemetry subsystem.

    Instrumentation sites ([Span.with_span], the counters threaded
    through [Sim.Runner], ...) check this flag and reduce to a direct
    call when it is off, so an uninstrumented run pays one branch per
    site and allocates nothing.  Off by default; the CLI's [--metrics]
    and [--trace] flags switch it on. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
