/* Monotonic wall clock for Obs.Clock.

   CLOCK_MONOTONIC counts real elapsed time and never jumps backwards
   (unlike gettimeofday under NTP adjustment) and never stops while the
   process sleeps (unlike Sys.time, which is CPU time).  Nanoseconds
   since an arbitrary epoch, as an OCaml int64. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value obs_clock_monotonic_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0) QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_int64((int64_t)(now.QuadPart * (1000000000.0 / freq.QuadPart)));
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value obs_clock_monotonic_ns(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
#else
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return caml_copy_int64((int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000);
#endif
}

#endif
