type counter = { mutable c_count : int }
type gauge = { mutable g_value : float }

(* Geometric buckets: value v > 0 lands in the bucket indexed by
   floor ((log2 v - min_exp) * sub), i.e. 8 sub-buckets per power of
   two starting at 2^-30 (~1e-9).  512 buckets cover 2^-30 .. 2^34. *)
let sub = 8
let min_exp = -30
let nbuckets = 64 * sub

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let get_or_create table name fresh =
  match Hashtbl.find_opt table name with
  | Some x -> x
  | None ->
    let x = fresh () in
    Hashtbl.add table name x;
    x

let counter name = get_or_create counters name (fun () -> { c_count = 0 })
let incr c = c.c_count <- c.c_count + 1
let add c n = c.c_count <- c.c_count + n
let count c = c.c_count

let gauge name = get_or_create gauges name (fun () -> { g_value = 0. })
let set g v = g.g_value <- v
let value g = g.g_value

let histogram name =
  get_or_create histograms name (fun () ->
      {
        h_count = 0;
        h_sum = 0.;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
        buckets = Array.make nbuckets 0;
      })

let bucket_index v =
  if v <= 0. then 0
  else
    let i =
      int_of_float
        (Float.floor ((Float.log2 v -. float_of_int min_exp) *. float_of_int sub))
    in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

(* Geometric midpoint of bucket [i], the canonical readout value. *)
let bucket_mid i =
  Float.exp2 (((float_of_int i +. 0.5) /. float_of_int sub) +. float_of_int min_exp)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let observations h = h.h_count

let percentile h q =
  if h.h_count = 0 then Float.nan
  else if q <= 0. then h.h_min
  else if q >= 1. then h.h_max
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count)))
    in
    let rec walk i cum =
      if i >= nbuckets then h.h_max
      else
        let cum = cum + h.buckets.(i) in
        if cum >= rank then Float.min h.h_max (Float.max h.h_min (bucket_mid i))
        else walk (i + 1) cum
    in
    walk 0 0
  end

type histo_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histo_summary

let snapshot () =
  let entries = ref [] in
  Hashtbl.iter (fun name c -> entries := (name, Counter_v c.c_count) :: !entries) counters;
  Hashtbl.iter (fun name g -> entries := (name, Gauge_v g.g_value) :: !entries) gauges;
  Hashtbl.iter
    (fun name (h : histogram) ->
      entries :=
        ( name,
          Histogram_v
            {
              h_count = h.h_count;
              h_sum = h.h_sum;
              h_min = h.h_min;
              h_max = h.h_max;
              p50 = percentile h 0.5;
              p90 = percentile h 0.9;
              p99 = percentile h 0.99;
            } )
        :: !entries)
    histograms;
  List.sort compare !entries

let reset () =
  Hashtbl.reset counters;
  Hashtbl.reset gauges;
  Hashtbl.reset histograms
