(* Domain-sharded registries.  Each domain owns one shard (Domain.DLS)
   holding its private instrument records, so the hot operations —
   incr/add/set/observe — touch only domain-local memory and need no
   synchronization.  Every shard is listed in a global registry; reads
   (count/value/percentile/snapshot) merge all shards under the
   registry mutex: counters and histograms sum, gauges keep the most
   recently set value (a global stamp breaks ties across domains).

   A handle ([counter "x"]) carries the metric's name plus a one-slot
   cache of (domain id, record).  The cache field is racy by design:
   the pair itself is immutable, so a stale read just misses and
   re-resolves against the reader's own shard.  Handles may therefore
   be created in one domain and used in any other. *)

type crecord = { mutable c_count : int }
type grecord = { mutable g_value : float; mutable g_stamp : int }

(* Geometric buckets: value v > 0 lands in the bucket indexed by
   floor ((log2 v - min_exp) * sub), i.e. 8 sub-buckets per power of
   two starting at 2^-30 (~1e-9).  512 buckets cover 2^-30 .. 2^34. *)
let sub = 8
let min_exp = -30
let nbuckets = 64 * sub

type hrecord = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array;
}

type shard = {
  s_counters : (string, crecord) Hashtbl.t;
  s_gauges : (string, grecord) Hashtbl.t;
  s_histograms : (string, hrecord) Hashtbl.t;
}

let registry_m = Mutex.create ()
let shards : shard list ref = ref []
let gauge_stamp = Atomic.make 1

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          s_counters = Hashtbl.create 16;
          s_gauges = Hashtbl.create 16;
          s_histograms = Hashtbl.create 16;
        }
      in
      Mutex.lock registry_m;
      shards := s :: !shards;
      Mutex.unlock registry_m;
      s)

(* Bumped by [reset] so cached records from before the reset are
   re-resolved instead of mutated as orphans. *)
let epoch = Atomic.make 0

type 'r handle = { name : string; mutable cache : (int * int * 'r) option }
type counter = crecord handle
type gauge = grecord handle
type histogram = hrecord handle

(* Instrument creation is rare; guard it with the registry mutex so a
   merging reader never sees a shard table mid-resize. *)
let get_or_create table name fresh =
  Mutex.lock registry_m;
  let r =
    match Hashtbl.find_opt table name with
    | Some r -> r
    | None ->
      let r = fresh () in
      Hashtbl.add table name r;
      r
  in
  Mutex.unlock registry_m;
  r

let resolve (h : 'r handle) (pick : shard -> (string, 'r) Hashtbl.t) fresh : 'r =
  let did = (Domain.self () :> int) in
  let ep = Atomic.get epoch in
  match h.cache with
  | Some (e, d, r) when d = did && e = ep -> r
  | _ ->
    let r = get_or_create (pick (Domain.DLS.get shard_key)) h.name fresh in
    h.cache <- Some (ep, did, r);
    r

let fresh_counter () = { c_count = 0 }
let fresh_gauge () = { g_value = 0.; g_stamp = 0 }

let fresh_histogram () =
  {
    h_count = 0;
    h_sum = 0.;
    h_min = Float.infinity;
    h_max = Float.neg_infinity;
    buckets = Array.make nbuckets 0;
  }

let counter_record (h : counter) = resolve h (fun s -> s.s_counters) fresh_counter
let gauge_record (h : gauge) = resolve h (fun s -> s.s_gauges) fresh_gauge

let histogram_record (h : histogram) =
  resolve h (fun s -> s.s_histograms) fresh_histogram

(* Handle creation registers the instrument in the creating domain's
   shard right away, so a declared metric appears in {!snapshot} (and
   the --metrics table, the run ledger) even before its first update —
   an empty histogram is a row with n=0, not an absent row. *)
let counter name : counter =
  let h = { name; cache = None } in
  ignore (counter_record h : crecord);
  h

let gauge name : gauge =
  let h = { name; cache = None } in
  ignore (gauge_record h : grecord);
  h

let histogram name : histogram =
  let h = { name; cache = None } in
  ignore (histogram_record h : hrecord);
  h

(* Merged reads: fold the named record over every shard. *)
let fold_shards pick name f init =
  Mutex.lock registry_m;
  let acc =
    List.fold_left
      (fun acc s ->
        match Hashtbl.find_opt (pick s) name with
        | Some r -> f acc r
        | None -> acc)
      init !shards
  in
  Mutex.unlock registry_m;
  acc

let incr (h : counter) =
  let r = counter_record h in
  r.c_count <- r.c_count + 1

let add (h : counter) n =
  let r = counter_record h in
  r.c_count <- r.c_count + n

let count (h : counter) =
  fold_shards (fun s -> s.s_counters) h.name (fun acc r -> acc + r.c_count) 0

let set (h : gauge) v =
  let r = gauge_record h in
  r.g_value <- v;
  r.g_stamp <- Atomic.fetch_and_add gauge_stamp 1

let value (h : gauge) =
  let _, v =
    fold_shards
      (fun s -> s.s_gauges)
      h.name
      (fun (stamp, v) r -> if r.g_stamp >= stamp then (r.g_stamp, r.g_value) else (stamp, v))
      (-1, 0.)
  in
  v

let bucket_index v =
  if v <= 0. then 0
  else
    let i =
      int_of_float
        (Float.floor ((Float.log2 v -. float_of_int min_exp) *. float_of_int sub))
    in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

(* Geometric midpoint of bucket [i], the canonical readout value. *)
let bucket_mid i =
  Float.exp2 (((float_of_int i +. 0.5) /. float_of_int sub) +. float_of_int min_exp)

let observe (h : histogram) v =
  let r = histogram_record h in
  r.h_count <- r.h_count + 1;
  r.h_sum <- r.h_sum +. v;
  if v < r.h_min then r.h_min <- v;
  if v > r.h_max then r.h_max <- v;
  let i = bucket_index v in
  r.buckets.(i) <- r.buckets.(i) + 1

let merge_into (acc : hrecord) (r : hrecord) =
  acc.h_count <- acc.h_count + r.h_count;
  acc.h_sum <- acc.h_sum +. r.h_sum;
  if r.h_min < acc.h_min then acc.h_min <- r.h_min;
  if r.h_max > acc.h_max then acc.h_max <- r.h_max;
  Array.iteri (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n) r.buckets;
  acc

let merged_histogram name =
  fold_shards (fun s -> s.s_histograms) name merge_into (fresh_histogram ())

let observations (h : histogram) = (merged_histogram h.name).h_count

let percentile_of (r : hrecord) q =
  if r.h_count = 0 then Float.nan
  else if q <= 0. then r.h_min
  else if q >= 1. then r.h_max
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int r.h_count)))
    in
    let rec walk i cum =
      if i >= nbuckets then r.h_max
      else
        let cum = cum + r.buckets.(i) in
        if cum >= rank then Float.min r.h_max (Float.max r.h_min (bucket_mid i))
        else walk (i + 1) cum
    in
    walk 0 0
  end

let percentile (h : histogram) q = percentile_of (merged_histogram h.name) q

type histo_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value_snapshot =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histo_summary

let snapshot () =
  (* Merge under one lock: collect the union of names per kind, then
     combine shard records name by name. *)
  Mutex.lock registry_m;
  let all = !shards in
  let names pick =
    List.fold_left
      (fun acc s -> Hashtbl.fold (fun name _ acc -> name :: acc) (pick s) acc)
      [] all
    |> List.sort_uniq compare
  in
  let sum_counter name =
    List.fold_left
      (fun acc s ->
        match Hashtbl.find_opt s.s_counters name with
        | Some r -> acc + r.c_count
        | None -> acc)
      0 all
  in
  let latest_gauge name =
    List.fold_left
      (fun (stamp, v) s ->
        match Hashtbl.find_opt s.s_gauges name with
        | Some r when r.g_stamp >= stamp -> (r.g_stamp, r.g_value)
        | _ -> (stamp, v))
      (-1, 0.) all
    |> snd
  in
  let merge_histo name =
    List.fold_left
      (fun acc s ->
        match Hashtbl.find_opt s.s_histograms name with
        | Some r -> merge_into acc r
        | None -> acc)
      (fresh_histogram ()) all
  in
  let entries =
    List.map (fun name -> (name, Counter_v (sum_counter name))) (names (fun s -> s.s_counters))
    @ List.map (fun name -> (name, Gauge_v (latest_gauge name))) (names (fun s -> s.s_gauges))
    @ List.map
        (fun name ->
          let r = merge_histo name in
          ( name,
            Histogram_v
              {
                h_count = r.h_count;
                h_sum = r.h_sum;
                h_min = r.h_min;
                h_max = r.h_max;
                p50 = percentile_of r 0.5;
                p90 = percentile_of r 0.9;
                p99 = percentile_of r 0.99;
              } ))
        (names (fun s -> s.s_histograms))
  in
  Mutex.unlock registry_m;
  List.sort compare entries

let reset () =
  Mutex.lock registry_m;
  Atomic.incr epoch;
  List.iter
    (fun s ->
      Hashtbl.reset s.s_counters;
      Hashtbl.reset s.s_gauges;
      Hashtbl.reset s.s_histograms)
    !shards;
  Mutex.unlock registry_m
