(** Strict JSONL trace parsing — the inverse of {!Sink.record_to_json}.

    [parse (Sink.record_to_json r) = Ok r] for every record (the
    round-trip property, QCheck-tested).  The parser is deliberately
    strict: every field exactly once, with the right JSON type,
    nothing after the closing brace — a truncated, garbled or
    foreign line is an [Error], never silently dropped data.

    Two schemas are accepted: v2 lines carry the emitting ["domain"]
    id; v1 lines (written before PR 6) lack it and read back with
    [domain = -1]. *)

type error = { line : int; message : string }
(** [line] is 1-based; 0 means the file could not be opened. *)

val parse : string -> (Span.record, string) result
(** Parse one trace line (no trailing newline). *)

val fold_file :
  string -> init:'a -> f:('a -> Span.record -> 'a) -> ('a, error) result
(** Fold over every line of a trace file in order, stopping at the
    first malformed line. *)

val read_file : string -> (Span.record list, error) result
(** All records of a trace file, in file order. *)
