type record = {
  name : string;
  domain : int;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  minor_words : float;
  major_words : float;
}

type totals = {
  count : int;
  total_ns : int64;
  minor_words : float;
  major_words : float;
}

type agg = {
  mutable a_count : int;
  mutable a_total_ns : int64;
  mutable a_minor : float;
  mutable a_major : float;
}

(* Each domain nests independently: the stack of currently-open spans
   (full path + that span's own depth) is domain-local state, so trials
   timed inside pool workers never corrupt the caller's nesting. *)
type frame = { f_path : string; f_depth : int }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Aggregates and the handler list are shared across domains: one
   mutex guards both, taken once per span close (spans bound trials,
   not inner loops, so contention is negligible).  Handlers run inside
   the lock, which also serializes sink writes. *)
let m = Mutex.create ()
let handlers : (record -> unit) list ref = ref []
let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 32

let on_record h =
  Mutex.lock m;
  handlers := h :: !handlers;
  Mutex.unlock m

let clear_handlers () =
  Mutex.lock m;
  handlers := [];
  Mutex.unlock m

let emit r =
  Mutex.lock m;
  (match Hashtbl.find_opt aggregates r.name with
  | Some a ->
    a.a_count <- a.a_count + 1;
    a.a_total_ns <- Int64.add a.a_total_ns r.dur_ns;
    a.a_minor <- a.a_minor +. r.minor_words;
    a.a_major <- a.a_major +. r.major_words
  | None ->
    Hashtbl.add aggregates r.name
      {
        a_count = 1;
        a_total_ns = r.dur_ns;
        a_minor = r.minor_words;
        a_major = r.major_words;
      });
  List.iter (fun h -> h r) !handlers;
  Mutex.unlock m

let with_span name f =
  if not (Control.enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let path, depth =
      match !stack with
      | [] -> (name, 0)
      | fr :: _ -> (fr.f_path ^ "/" ^ name, fr.f_depth + 1)
    in
    stack := { f_path = path; f_depth = depth } :: !stack;
    let g0 = Gc.quick_stat () in
    let start = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.elapsed_ns ~since:start in
        let g1 = Gc.quick_stat () in
        (match !stack with _ :: rest -> stack := rest | [] -> ());
        emit
          {
            name = path;
            domain = (Domain.self () :> int);
            depth;
            start_ns = start;
            dur_ns = dur;
            minor_words = g1.minor_words -. g0.minor_words;
            major_words = g1.major_words -. g0.major_words;
          })
      f
  end

let context () =
  match !(Domain.DLS.get stack_key) with
  | [] -> None
  | fr :: _ -> Some (fr.f_path, fr.f_depth)

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some (path, depth) ->
    let stack = Domain.DLS.get stack_key in
    let saved = !stack in
    stack := [ { f_path = path; f_depth = depth } ];
    Fun.protect ~finally:(fun () -> stack := saved) f

let totals () =
  Mutex.lock m;
  let entries =
    Hashtbl.fold
      (fun name a acc ->
        ( name,
          {
            count = a.a_count;
            total_ns = a.a_total_ns;
            minor_words = a.a_minor;
            major_words = a.a_major;
          } )
        :: acc)
      aggregates []
  in
  Mutex.unlock m;
  List.sort compare entries

let reset () =
  Mutex.lock m;
  Hashtbl.reset aggregates;
  Mutex.unlock m;
  Domain.DLS.get stack_key := []
