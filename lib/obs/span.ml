type record = {
  name : string;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  minor_words : float;
  major_words : float;
}

type totals = {
  count : int;
  total_ns : int64;
  minor_words : float;
  major_words : float;
}

type agg = {
  mutable a_count : int;
  mutable a_total_ns : int64;
  mutable a_minor : float;
  mutable a_major : float;
}

(* Stack of full paths of the currently-open spans, innermost first. *)
let stack : string list ref = ref []
let handlers : (record -> unit) list ref = ref []
let aggregates : (string, agg) Hashtbl.t = Hashtbl.create 32

let on_record h = handlers := h :: !handlers
let clear_handlers () = handlers := []

let emit r =
  (match Hashtbl.find_opt aggregates r.name with
  | Some a ->
    a.a_count <- a.a_count + 1;
    a.a_total_ns <- Int64.add a.a_total_ns r.dur_ns;
    a.a_minor <- a.a_minor +. r.minor_words;
    a.a_major <- a.a_major +. r.major_words
  | None ->
    Hashtbl.add aggregates r.name
      {
        a_count = 1;
        a_total_ns = r.dur_ns;
        a_minor = r.minor_words;
        a_major = r.major_words;
      });
  List.iter (fun h -> h r) !handlers

let with_span name f =
  if not (Control.enabled ()) then f ()
  else begin
    let path = match !stack with [] -> name | p :: _ -> p ^ "/" ^ name in
    let depth = List.length !stack in
    stack := path :: !stack;
    let g0 = Gc.quick_stat () in
    let start = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Clock.elapsed_ns ~since:start in
        let g1 = Gc.quick_stat () in
        (match !stack with _ :: rest -> stack := rest | [] -> ());
        emit
          {
            name = path;
            depth;
            start_ns = start;
            dur_ns = dur;
            minor_words = g1.minor_words -. g0.minor_words;
            major_words = g1.major_words -. g0.major_words;
          })
      f
  end

let totals () =
  Hashtbl.fold
    (fun name a acc ->
      ( name,
        {
          count = a.a_count;
          total_ns = a.a_total_ns;
          minor_words = a.a_minor;
          major_words = a.a_major;
        } )
      :: acc)
    aggregates []
  |> List.sort compare

let reset () =
  Hashtbl.reset aggregates;
  stack := []
