(** Offline trace analytics over parsed span records.

    Everything consumes a [Span.record list] (see {!Reader}) and
    returns plain data; the [ephemeral trace] CLI renders it. *)

val totals : Span.record list -> (string * Span.totals) list
(** Per-path aggregate, sorted by path — the same shape {!Span.totals}
    produces in-process, so {!Export.span_table_of} renders a trace
    file byte-compatibly with the [--metrics] span table. *)

val folded : Span.record list -> (string * int64) list
(** Folded-stack lines for flamegraph.pl / speedscope: the span path
    with [/] folded to [;], and the path's {e self} time in
    nanoseconds (total minus direct children, clamped at zero —
    children running concurrently on other domains can exceed their
    parent's wall time).  Sorted by stack. *)

(** {2 Per-domain utilization} *)

type domain_row = {
  domain : int;  (** emitting domain id; [-1] for schema-v1 records *)
  spans : int;
  busy_ns : int64;  (** union of the domain's span intervals *)
}

type domain_stats = {
  rows : domain_row list;  (** sorted by domain id *)
  wall_ns : int64;  (** earliest span start to latest span end *)
  concurrency : (int * int64) list;
      (** [(k, ns)]: time with exactly [k] domains busy, sorted by [k] *)
}

val domain_stats : Span.record list -> domain_stats option
(** [None] on an empty record list. *)

(** {2 Trace diff (regression gate)} *)

type diff_row = {
  path : string;
  old_t : Span.totals option;
  new_t : Span.totals option;
  wall_pct : float option;
      (** wall-time delta in percent; [None] unless the path appears in
          both runs with positive old time *)
  alloc_pct : float option;  (** same for minor+major allocated words *)
}

val diff :
  (string * Span.totals) list ->
  (string * Span.totals) list ->
  diff_row list
(** [diff old new] over the union of paths, sorted by path. *)

val worst_wall_pct : diff_row list -> float
(** Worst (largest) wall regression over comparable paths;
    [neg_infinity] when no path is comparable. *)
