let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Schema v2: the emitting domain id rides along, so a -j N trace can
   be sliced per domain after the fact.  Readers must keep accepting
   v1 lines (no "domain" field) — see Reader. *)
let record_to_json (r : Span.record) =
  Printf.sprintf
    {|{"name":"%s","domain":%d,"depth":%d,"start_ns":%Ld,"dur_ns":%Ld,"minor_words":%.0f,"major_words":%.0f}|}
    (json_escape r.name) r.domain r.depth r.start_ns r.dur_ns r.minor_words
    r.major_words

(* The mutex makes emit/close safe against each other when spans close
   on pool worker domains; whole-line writes under the lock keep every
   JSONL line intact.

   Publication is atomic: lines stream into <path>.tmp and [close]
   fsyncs then renames onto [path], so an interrupted run never leaves
   a truncated trace at the advertised path — only a stale .tmp. *)
type t = {
  oc : out_channel;
  tmp : string;
  path : string;
  m : Mutex.t;
  mutable closed : bool;
}

let open_jsonl path =
  let tmp = path ^ ".tmp" in
  { oc = open_out tmp; tmp; path; m = Mutex.create (); closed = false }

(* Spans can close on pool workers while the main domain shuts the
   sink down (SIGINT publishes mid-run); an emit that loses that race
   is dropped, counted, and otherwise a no-op — never a write to a
   closed channel. *)
let dropped_c = Metrics.counter "obs.sink_dropped"

let emit t r =
  Mutex.lock t.m;
  if t.closed then Metrics.incr dropped_c
  else begin
    output_string t.oc (record_to_json r);
    output_char t.oc '\n'
  end;
  Mutex.unlock t.m

let attach t = Span.on_record (emit t)

let close t =
  Mutex.lock t.m;
  if not t.closed then begin
    t.closed <- true;
    flush t.oc;
    (try Unix.fsync (Unix.descr_of_out_channel t.oc) with
    | Unix.Unix_error _ -> ());
    close_out t.oc;
    Sys.rename t.tmp t.path
  end;
  Mutex.unlock t.m
