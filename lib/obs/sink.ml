let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let record_to_json (r : Span.record) =
  Printf.sprintf
    {|{"name":"%s","depth":%d,"start_ns":%Ld,"dur_ns":%Ld,"minor_words":%.0f,"major_words":%.0f}|}
    (json_escape r.name) r.depth r.start_ns r.dur_ns r.minor_words r.major_words

type t = { oc : out_channel; mutable closed : bool }

let open_jsonl path = { oc = open_out path; closed = false }

let emit t r =
  if not t.closed then begin
    output_string t.oc (record_to_json r);
    output_char t.oc '\n'
  end

let attach t = Span.on_record (emit t)

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end
