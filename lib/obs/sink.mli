(** Trace sinks: span records out of the process.

    The JSONL sink writes one JSON object per completed span, one per
    line — the schema documented in README.md ("Observability"):

    {v
    {"name":"e1/trial","depth":1,"start_ns":123,"dur_ns":456,
     "minor_words":7890,"major_words":0}
    v}

    Writes are mutex-guarded whole lines, so spans closing on pool
    worker domains interleave per record, never mid-line.

    Publication is atomic: lines stream into [<path>.tmp] and {!close}
    fsyncs then renames onto [path], so an interrupted run never
    leaves a truncated trace at the advertised path. *)

type t

val open_jsonl : string -> t
(** Open [path ^ ".tmp"] for writing; the trace appears at [path]
    when {!close} renames it into place. *)

val attach : t -> unit
(** Subscribe the sink to {!Span.on_record}. *)

val emit : t -> Span.record -> unit
val close : t -> unit
(** Flush, fsync, close and atomically publish at the path given to
    {!open_jsonl}; idempotent.  Does not unsubscribe — use
    {!Span.clear_handlers} when reconfiguring in-process. *)

(** Serialization, exposed for tests. *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal
    (backslash, double quote, and control characters). *)

val record_to_json : Span.record -> string
(** One JSON object, no trailing newline. *)
