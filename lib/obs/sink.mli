(** Trace sinks: span records out of the process.

    The JSONL sink writes one JSON object per completed span, one per
    line — schema v2, documented in README.md ("Observability"):

    {v
    {"name":"e1/trial","domain":0,"depth":1,"start_ns":123,"dur_ns":456,
     "minor_words":7890,"major_words":0}
    v}

    ("domain" is the id of the domain the span closed on; v1 traces
    lack the field and {!Reader} still accepts them.)

    Writes are mutex-guarded whole lines, so spans closing on pool
    worker domains interleave per record, never mid-line.  An [emit]
    that races a {!close} (spans closing on workers during a SIGINT
    publish) is a guarded no-op, counted under the
    [obs.sink_dropped] metric.

    Publication is atomic: lines stream into [<path>.tmp] and {!close}
    fsyncs then renames onto [path], so an interrupted run never
    leaves a truncated trace at the advertised path. *)

type t

val open_jsonl : string -> t
(** Open [path ^ ".tmp"] for writing; the trace appears at [path]
    when {!close} renames it into place. *)

val attach : t -> unit
(** Subscribe the sink to {!Span.on_record}. *)

val emit : t -> Span.record -> unit
(** Write one record as a whole line; after {!close}, a counted no-op. *)

val close : t -> unit
(** Flush, fsync, close and atomically publish at the path given to
    {!open_jsonl}; idempotent.  Does not unsubscribe — use
    {!Span.clear_handlers} when reconfiguring in-process. *)

(** Serialization, exposed for tests. *)

val json_escape : string -> string
(** Escape a string for inclusion inside a JSON string literal
    (backslash, double quote, and control characters). *)

val record_to_json : Span.record -> string
(** One JSON object, no trailing newline. *)
