(** End-of-run telemetry rendering, via {!Stats.Table}.

    [print_summary] is what the CLI's [--metrics] flag shows: one row
    per span path (count, total and mean wall milliseconds, minor and
    major words allocated), then one row per registered metric. *)

val span_table : unit -> Stats.Table.t

val span_table_of :
  ?title:string -> (string * Span.totals) list -> Stats.Table.t
(** Render an explicit totals list (e.g. aggregated from a trace file
    by {!Analysis.totals}) with the exact layout of {!span_table}. *)

val metrics_table : unit -> Stats.Table.t
(** Empty histograms render their percentiles as [-], not [nan]. *)

val print_summary : unit -> unit
(** Span table, then — only if any metric is registered — the metrics
    table, to stdout. *)
