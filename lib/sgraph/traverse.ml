let unreachable = max_int

(* Core BFS over the CSR adjacency: [dist] and [queue] must each hold at
   least [n] entries; only [dist.(0 .. n-1)] is meaningful afterwards.
   [parent] is optional so the distance-only callers skip the second
   write.  The flat int queue replaces [Stdlib.Queue] — each vertex is
   enqueued at most once, so [n] slots suffice and nothing allocates. *)
let bfs_core g s ~reverse ~dist ~queue ~parent =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Traverse.bfs: source out of range";
  Array.fill dist 0 n unreachable;
  (match parent with Some p -> Array.fill p 0 n (-1) | None -> ());
  dist.(s) <- 0;
  queue.(0) <- s;
  let head = ref 0 and tail = ref 1 in
  let visit u v =
    if dist.(v) = unreachable then begin
      dist.(v) <- dist.(u) + 1;
      (match parent with Some p -> p.(v) <- u | None -> ());
      queue.(!tail) <- v;
      incr tail
    end
  in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    if reverse then Graph.iter_in g u (fun _ v -> visit u v)
    else Graph.iter_out g u (fun _ v -> visit u v)
  done

let bfs_into g s ~dist ~queue = bfs_core g s ~reverse:false ~dist ~queue ~parent:None

let bfs g s =
  let n = Graph.n g in
  let dist = Array.make (Stdlib.max 1 n) unreachable in
  let queue = Array.make (Stdlib.max 1 n) 0 in
  bfs_into g s ~dist ~queue;
  dist

let bfs_tree g s =
  let n = Graph.n g in
  let dist = Array.make (Stdlib.max 1 n) unreachable in
  let parent = Array.make (Stdlib.max 1 n) (-1) in
  let queue = Array.make (Stdlib.max 1 n) 0 in
  bfs_core g s ~reverse:false ~dist ~queue ~parent:(Some parent);
  (dist, parent)

let bfs_reverse g s =
  let n = Graph.n g in
  let dist = Array.make (Stdlib.max 1 n) unreachable in
  let queue = Array.make (Stdlib.max 1 n) 0 in
  bfs_core g s ~reverse:true ~dist ~queue ~parent:None;
  dist

let dfs_order g root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Traverse.dfs_order: root out of range";
  let visited = Array.make n false in
  let order = ref [] in
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    if not visited.(u) then begin
      visited.(u) <- true;
      order := u :: !order;
      let neighbors = Graph.out_neighbors g u in
      (* Push in reverse so lower-indexed neighbours are visited first. *)
      for i = Array.length neighbors - 1 downto 0 do
        if not visited.(neighbors.(i)) then Stack.push neighbors.(i) stack
      done
    end
  done;
  List.rev !order

let reachable_count g s =
  let dist = bfs g s in
  Array.fold_left (fun acc d -> if d <> unreachable then acc + 1 else acc) 0 dist
