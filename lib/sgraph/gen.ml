(* Dense generators emit straight into preallocated endpoint arrays and
   hand them to the trusted [Graph.of_arrays] constructor: no O(n²)
   cons-list, no Hashtbl re-validation of edges that are distinct by
   construction.  The historical list-based path pushed edges and let
   [Array.of_list] reverse them, so edge id 0 was the *last* pair
   emitted; [reversed] reproduces that id order exactly — label
   assignments draw per edge id, so the order is part of the output
   contract. *)
let reversed a =
  let m = Array.length a in
  for i = 0 to (m / 2) - 1 do
    let tmp = a.(i) in
    a.(i) <- a.(m - 1 - i);
    a.(m - 1 - i) <- tmp
  done;
  a

let of_emitter kind ~n ~m emit =
  let src = Array.make m 0 and dst = Array.make m 0 in
  let fill = ref 0 in
  emit (fun u v ->
      src.(!fill) <- u;
      dst.(!fill) <- v;
      incr fill);
  assert (!fill = m);
  Graph.of_arrays kind ~n (reversed src) (reversed dst)

let clique kind n =
  if n < 1 then invalid_arg "Gen.clique: need n >= 1";
  let m =
    match kind with
    | Graph.Directed -> n * (n - 1)
    | Graph.Undirected -> n * (n - 1) / 2
  in
  of_emitter kind ~n ~m (fun push ->
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let keep =
            match kind with
            | Graph.Directed -> u <> v
            | Graph.Undirected -> u < v
          in
          if keep then push u v
        done
      done)

let star n =
  if n < 2 then invalid_arg "Gen.star: need n >= 2";
  Graph.create Undirected ~n (List.init (n - 1) (fun i -> (0, i + 1)))

(* O(1)-memory twins of [clique]/[star]/[grid]: same vertex and edge
   numbering, arithmetic adjacency instead of CSR arrays.  These are the
   topologies the implicit temporal backend scales to n = 10^5..10^6. *)
let clique_implicit kind n = Graph.implicit_clique kind n
let star_implicit n = Graph.implicit_star n
let grid_implicit rows cols = Graph.implicit_grid ~rows ~cols

let path n =
  if n < 1 then invalid_arg "Gen.path: need n >= 1";
  Graph.create Undirected ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.create Undirected ~n
    (List.init n (fun i -> (i, (i + 1) mod n)))

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Gen.complete_bipartite: empty side";
  of_emitter Undirected ~n:(a + b) ~m:(a * b) (fun push ->
      for u = 0 to a - 1 do
        for v = a to a + b - 1 do
          push u v
        done
      done)

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid: empty grid";
  let id r c = (r * cols) + c in
  let m = (rows * (cols - 1)) + (cols * (rows - 1)) in
  of_emitter Undirected ~n:(rows * cols) ~m (fun push ->
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if c + 1 < cols then push (id r c) (id r (c + 1));
          if r + 1 < rows then push (id r c) (id (r + 1) c)
        done
      done)

let hypercube d =
  if d < 1 then invalid_arg "Gen.hypercube: need d >= 1";
  let n = 1 lsl d in
  of_emitter Undirected ~n ~m:(n * d / 2) (fun push ->
      for v = 0 to n - 1 do
        for bit = 0 to d - 1 do
          let w = v lxor (1 lsl bit) in
          if v < w then push v w
        done
      done)

let binary_tree n =
  if n < 1 then invalid_arg "Gen.binary_tree: need n >= 1";
  Graph.create Undirected ~n
    (List.init (n - 1) (fun i ->
         let child = i + 1 in
         ((child - 1) / 2, child)))

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel: need n >= 4";
  let rim = n - 1 in
  let spokes = List.init rim (fun i -> (0, i + 1)) in
  let ring = List.init rim (fun i -> (1 + i, 1 + ((i + 1) mod rim))) in
  Graph.create Undirected ~n (spokes @ ring)

let clique_edges offset k =
  let edges = ref [] in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      edges := (offset + u, offset + v) :: !edges
    done
  done;
  !edges

let barbell k =
  if k < 2 then invalid_arg "Gen.barbell: need k >= 2";
  let left = clique_edges 0 k and right = clique_edges k k in
  Graph.create Undirected ~n:(2 * k) (((k - 1, k) :: left) @ right)

let lollipop k len =
  if k < 2 then invalid_arg "Gen.lollipop: need k >= 2";
  if len < 1 then invalid_arg "Gen.lollipop: need len >= 1";
  let n = k + len in
  let tail = List.init len (fun i -> (k - 1 + i, k + i)) in
  Graph.create Undirected ~n (clique_edges 0 k @ tail)

let random_tree rng n =
  if n < 1 then invalid_arg "Gen.random_tree: need n >= 1";
  if n = 1 then Graph.create Undirected ~n []
  else if n = 2 then Graph.create Undirected ~n [ (0, 1) ]
  else begin
    (* Decode a uniform Prüfer sequence of length n-2. *)
    let pruefer = Array.init (n - 2) (fun _ -> Prng.Rng.int rng n) in
    let degree = Array.make n 1 in
    Array.iter (fun v -> degree.(v) <- degree.(v) + 1) pruefer;
    let module Leaves = Set.Make (Int) in
    let leaves = ref Leaves.empty in
    for v = 0 to n - 1 do
      if degree.(v) = 1 then leaves := Leaves.add v !leaves
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let leaf = Leaves.min_elt !leaves in
        leaves := Leaves.remove leaf !leaves;
        edges := (leaf, v) :: !edges;
        degree.(v) <- degree.(v) - 1;
        if degree.(v) = 1 then leaves := Leaves.add v !leaves)
      pruefer;
    let u = Leaves.min_elt !leaves in
    let v = Leaves.max_elt !leaves in
    Graph.create Undirected ~n ((u, v) :: !edges)
  end

(* Map a linear index over the strictly-upper-triangular pairs of [0..n). *)
let pair_of_index n idx =
  (* Find u: idx falls in u's block of (n-1-u) pairs. *)
  let rec find u base =
    let block = n - 1 - u in
    if idx < base + block then (u, u + 1 + (idx - base))
    else find (u + 1) (base + block)
  in
  find 0 0

let gnp rng ~n ~p =
  if n < 1 then invalid_arg "Gen.gnp: need n >= 1";
  if not (p >= 0. && p <= 1.) then invalid_arg "Gen.gnp: p not in [0,1]";
  let total = n * (n - 1) / 2 in
  let edges = ref [] in
  if p >= 1. then
    for idx = 0 to total - 1 do
      edges := pair_of_index n idx :: !edges
    done
  else if p > 0. then begin
    (* Geometric skipping (Batagelj–Brandes): jump straight between
       successive present edges. *)
    let log1mp = Float.log1p (-.p) in
    let idx = ref (-1) in
    let continue = ref true in
    while !continue do
      let u = 1. -. Prng.Rng.float rng in
      let skip = 1 + int_of_float (Float.log u /. log1mp) in
      idx := !idx + skip;
      if !idx >= total then continue := false
      else edges := pair_of_index n !idx :: !edges
    done
  end;
  Graph.create Undirected ~n !edges

let gnm rng ~n ~m =
  if n < 1 then invalid_arg "Gen.gnm: need n >= 1";
  let total = n * (n - 1) / 2 in
  if m < 0 || m > total then invalid_arg "Gen.gnm: m out of range";
  let picks = Prng.Sample.choose_distinct rng ~k:m ~n:total in
  Graph.create Undirected ~n
    (Array.to_list (Array.map (pair_of_index n) picks))

let barabasi_albert rng ~n ~m =
  if m < 1 || m >= n then invalid_arg "Gen.barabasi_albert: need 1 <= m < n";
  (* Endpoint multiset: picking a uniform element of [targets] is
     degree-proportional selection. *)
  let targets = ref [] in
  let edges = ref (clique_edges 0 (m + 1)) in
  List.iter
    (fun (u, v) -> targets := u :: v :: !targets)
    !edges;
  let target_array = ref (Array.of_list !targets) in
  let target_count = ref (Array.length !target_array) in
  let push endpoint =
    if !target_count = Array.length !target_array then begin
      let grown = Array.make (Stdlib.max 8 (2 * !target_count)) 0 in
      Array.blit !target_array 0 grown 0 !target_count;
      target_array := grown
    end;
    !target_array.(!target_count) <- endpoint;
    incr target_count
  in
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let candidate = !target_array.(Prng.Rng.int rng !target_count) in
      if not (Hashtbl.mem chosen candidate) then Hashtbl.add chosen candidate ()
    done;
    Hashtbl.iter
      (fun u () ->
        edges := (u, v) :: !edges;
        push u;
        push v)
      chosen
  done;
  Graph.create Undirected ~n !edges

let watts_strogatz rng ~n ~k ~beta =
  if k < 1 then invalid_arg "Gen.watts_strogatz: need k >= 1";
  if 2 * k >= n - 1 then invalid_arg "Gen.watts_strogatz: need 2k < n - 1";
  if not (beta >= 0. && beta <= 1.) then
    invalid_arg "Gen.watts_strogatz: beta not in [0,1]";
  let present = Hashtbl.create (n * k) in
  let canonical u v = if u < v then (u, v) else (v, u) in
  let add u v = Hashtbl.replace present (canonical u v) () in
  let mem u v = Hashtbl.mem present (canonical u v) in
  let remove u v = Hashtbl.remove present (canonical u v) in
  for u = 0 to n - 1 do
    for offset = 1 to k do
      add u ((u + offset) mod n)
    done
  done;
  (* Rewire each original lattice edge (u, u+offset) with prob beta. *)
  for u = 0 to n - 1 do
    for offset = 1 to k do
      let v = (u + offset) mod n in
      if Prng.Rng.bernoulli rng beta && mem u v then begin
        (* Choose a fresh endpoint for u, avoiding self and duplicates;
           bounded retries guard the (astronomically unlikely) case of a
           rewiring-saturated vertex — the edge is then kept in place. *)
        let rec fresh attempts =
          if attempts > 16 * n then None
          else
            let w = Prng.Rng.int rng n in
            if w = u || mem u w then fresh (attempts + 1) else Some w
        in
        match fresh 0 with
        | Some w ->
          remove u v;
          add u w
        | None -> ()
      end
    done
  done;
  Graph.create Undirected ~n (List.of_seq (Hashtbl.to_seq_keys present))
