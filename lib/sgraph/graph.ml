type kind = Directed | Undirected

(* Flat CSR layout: arcs out of [v] occupy rows [out_off.(v)] to
   [out_off.(v+1) - 1] of the parallel [out_edge]/[out_vert] arrays (and
   symmetrically for incoming arcs).  Everything is an unboxed int
   array: no tuples, no per-vertex array headers, and adjacency scans
   touch two cache-friendly flat ranges instead of chasing pointers.
   For undirected graphs the in- and out-CSR are the same arc sequence,
   so they share storage. *)
type csr = {
  e_src : int array;  (* edge id -> source (min endpoint if undirected) *)
  e_dst : int array;
  out_off : int array;  (* length n + 1 *)
  out_edge : int array;  (* arc row -> edge id *)
  out_vert : int array;  (* arc row -> target vertex *)
  in_off : int array;
  in_edge : int array;
  in_vert : int array;  (* arc row -> source vertex *)
}

(* Besides the materialized CSR, a few regular topologies exist as
   *shapes*: O(1)-memory values whose adjacency, edge ids and endpoint
   decode are pure arithmetic on (n, rows, cols).  They replicate the
   generator's edge numbering exactly — [Gen.of_emitter] reverses the
   emission order, so edge id 0 is the LAST pair emitted — and their
   iterators visit arcs in the same edge-id-ascending order the CSR
   build produces.  That numbering is part of the output contract
   (label assignments draw per edge id), so the shape and CSR forms of
   the same topology are interchangeable everywhere, including under
   derived-label (implicit backend) instances at n far beyond what a
   CSR can materialize. *)
type shape =
  | Csr of csr
  | Clique of { transposed : bool }  (* directed unless t.kind says otherwise *)
  | Star  (* undirected; centre 0; edge e = (0, e+1); not reversed *)
  | Grid of { rows : int; cols : int }  (* undirected; row-major cells *)

type t = { kind : kind; n : int; shape : shape }

let kind t = t.kind
let is_directed t = t.kind = Directed
let n t = t.n

let m t =
  match t.shape with
  | Csr c -> Array.length c.e_src
  | Clique _ -> (
    match t.kind with
    | Directed -> t.n * (t.n - 1)
    | Undirected -> t.n * (t.n - 1) / 2)
  | Star -> t.n - 1
  | Grid { rows; cols } -> (rows * (cols - 1)) + (cols * (rows - 1))

let arc_count t =
  match t.kind with Directed -> m t | Undirected -> 2 * m t

(* ---------------------------------------------------------------- *)
(* Clique arithmetic.  Emission order (see Gen.clique): u ascending,
   v ascending (skipping u if directed, v > u if undirected); edge id
   e = m - 1 - k where k is the emission index. *)

(* Directed: k = u*(n-1) + idx with idx = v when v < u else v - 1. *)
let clique_dir_edge ~n ~m u v =
  m - 1 - ((u * (n - 1)) + if v < u then v else v - 1)

let clique_dir_endpoints ~n ~m e =
  let k = m - 1 - e in
  let u = k / (n - 1) in
  let j = k mod (n - 1) in
  (u, if j < u then j else j + 1)

(* Undirected: pairs (u, v), u < v, in lex order; [off u] counts the
   pairs in blocks before u's. *)
let clique_und_off ~n u = u * ((2 * n) - 1 - u) / 2

let clique_und_edge ~n ~m u v =
  let u, v = if u < v then (u, v) else (v, u) in
  m - 1 - (clique_und_off ~n u + v - u - 1)

let clique_und_endpoints ~n ~m e =
  let k = m - 1 - e in
  (* Float guess for the block, exact for k < 2^53, then an integer
     fixup absorbs the sqrt rounding. *)
  let fn = float_of_int ((2 * n) - 1) in
  let disc = Float.max 0. ((fn *. fn) -. (8.0 *. float_of_int k)) in
  let u = ref (Stdlib.max 0 (Stdlib.min (n - 2) (int_of_float ((fn -. sqrt disc) /. 2.0)))) in
  while !u < n - 2 && clique_und_off ~n (!u + 1) <= k do incr u done;
  while !u > 0 && clique_und_off ~n !u > k do decr u done;
  (!u, !u + 1 + (k - clique_und_off ~n !u))

(* ---------------------------------------------------------------- *)
(* Grid arithmetic.  Emission order (see Gen.grid): per cell (r, c) in
   row-major order, the rightward edge then the downward edge.  A cell
   in a non-final row therefore owns 2 emission slots when c < cols-1
   (h then v) and 1 otherwise (v); final-row cells own 1 horizontal
   slot.  [grid_cell_start] is the emission index of cell (r, c)'s
   first slot. *)
let grid_cell_start ~rows ~cols r c =
  (r * ((2 * cols) - 1)) + (c * (1 + if r < rows - 1 then 1 else 0))

(* Emission index of the horizontal edge (r,c)-(r,c+1), c < cols-1. *)
let grid_h_emit ~rows ~cols r c = grid_cell_start ~rows ~cols r c

(* Emission index of the vertical edge (r,c)-(r+1,c), r < rows-1. *)
let grid_v_emit ~rows ~cols r c =
  grid_cell_start ~rows ~cols r c + if c < cols - 1 then 1 else 0

let grid_endpoints ~rows ~cols ~m e =
  let k = m - 1 - e in
  let cell r c = (r * cols) + c in
  if cols = 1 then (* vertical chain: k-th emission is (k,0)-(k+1,0) *)
    (cell k 0, cell (k + 1) 0)
  else begin
    let q = k / ((2 * cols) - 1) in
    if q >= rows - 1 then begin
      (* Final row: one horizontal slot per cell. *)
      let c = k - ((rows - 1) * ((2 * cols) - 1)) in
      (cell (rows - 1) c, cell (rows - 1) (c + 1))
    end
    else begin
      let off = k mod ((2 * cols) - 1) in
      if off < 2 * (cols - 1) then
        let c = off / 2 in
        if off land 1 = 0 then (cell q c, cell q (c + 1))
        else (cell q c, cell (q + 1) c)
      else (cell q (cols - 1), cell (q + 1) (cols - 1))
    end
  end

(* ---------------------------------------------------------------- *)
(* Build the CSR indexes from validated endpoint arrays.  Arcs are
   appended in edge-id order, an undirected edge contributing u->v then
   v->u — the per-vertex arc order every deterministic consumer (walker
   sampling, journey tie-breaks) relies on. *)
let build kind n e_src e_dst =
  let m = Array.length e_src in
  let out_count = Array.make (n + 1) 0 in
  let in_count = if kind = Undirected then out_count else Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    let u = e_src.(e) and v = e_dst.(e) in
    out_count.(u) <- out_count.(u) + 1;
    in_count.(v) <- in_count.(v) + 1
  done;
  let offsets count =
    let off = Array.make (n + 1) 0 in
    let sum = ref 0 in
    for v = 0 to n - 1 do
      off.(v) <- !sum;
      sum := !sum + count.(v)
    done;
    off.(n) <- !sum;
    (off, !sum)
  in
  let out_off, out_total = offsets out_count in
  let fill = Array.copy out_off in
  let out_edge = Array.make out_total 0 in
  let out_vert = Array.make out_total 0 in
  let csr =
    match kind with
    | Undirected ->
      (* Shared arc table: out rows of w are exactly the in rows of w
         (same edge, opposite endpoint), in the same append order. *)
      for e = 0 to m - 1 do
        let u = e_src.(e) and v = e_dst.(e) in
        let pu = fill.(u) in
        out_edge.(pu) <- e;
        out_vert.(pu) <- v;
        fill.(u) <- pu + 1;
        let pv = fill.(v) in
        out_edge.(pv) <- e;
        out_vert.(pv) <- u;
        fill.(v) <- pv + 1
      done;
      {
        e_src; e_dst;
        out_off; out_edge; out_vert;
        in_off = out_off; in_edge = out_edge; in_vert = out_vert;
      }
    | Directed ->
      let in_off, in_total = offsets in_count in
      let in_fill = Array.copy in_off in
      let in_edge = Array.make in_total 0 in
      let in_vert = Array.make in_total 0 in
      for e = 0 to m - 1 do
        let u = e_src.(e) and v = e_dst.(e) in
        let pu = fill.(u) in
        out_edge.(pu) <- e;
        out_vert.(pu) <- v;
        fill.(u) <- pu + 1;
        let pv = in_fill.(v) in
        in_edge.(pv) <- e;
        in_vert.(pv) <- u;
        in_fill.(v) <- pv + 1
      done;
      { e_src; e_dst; out_off; out_edge; out_vert; in_off; in_edge; in_vert }
  in
  { kind; n; shape = Csr csr }

let of_arrays kind ~n e_src e_dst =
  if n < 0 then invalid_arg "Graph.of_arrays: negative vertex count";
  let m = Array.length e_src in
  if Array.length e_dst <> m then
    invalid_arg "Graph.of_arrays: endpoint arrays differ in length";
  for e = 0 to m - 1 do
    let u = e_src.(e) and v = e_dst.(e) in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.of_arrays: endpoint out of range (%d,%d)" u v);
    if u = v then invalid_arg "Graph.of_arrays: self-loop";
    if kind = Undirected && u > v then begin
      e_src.(e) <- v;
      e_dst.(e) <- u
    end
  done;
  build kind n e_src e_dst

let create kind ~n edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let normalise (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: endpoint out of range (%d,%d)" u v);
    if u = v then invalid_arg "Graph.create: self-loop";
    match kind with
    | Directed -> (u, v)
    | Undirected -> if u < v then (u, v) else (v, u)
  in
  let edges = Array.of_list (List.map normalise edges) in
  let seen = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun edge ->
      if Hashtbl.mem seen edge then
        invalid_arg "Graph.create: duplicate edge"
      else Hashtbl.add seen edge ())
    edges;
  build kind n (Array.map fst edges) (Array.map snd edges)

(* ---------------------------------------------------------------- *)
(* Shape constructors: same vertex/edge numbering as the corresponding
   Gen generators, O(1) memory. *)

let implicit_clique kind n =
  if n < 1 then invalid_arg "Graph.implicit_clique: need n >= 1";
  { kind; n; shape = Clique { transposed = false } }

let implicit_star n =
  if n < 2 then invalid_arg "Graph.implicit_star: need n >= 2";
  { kind = Undirected; n; shape = Star }

let implicit_grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Graph.implicit_grid: empty grid";
  { kind = Undirected; n = rows * cols; shape = Grid { rows; cols } }

let is_implicit t = match t.shape with Csr _ -> false | _ -> true

(* ---------------------------------------------------------------- *)

let edge_endpoints t e =
  if e < 0 || e >= m t then invalid_arg "Graph.edge_endpoints: bad edge id";
  match t.shape with
  | Csr c -> (c.e_src.(e), c.e_dst.(e))
  | Clique { transposed } ->
    let u, v =
      match t.kind with
      | Directed -> clique_dir_endpoints ~n:t.n ~m:(m t) e
      | Undirected -> clique_und_endpoints ~n:t.n ~m:(m t) e
    in
    if transposed then (v, u) else (u, v)
  | Star -> (0, e + 1)
  | Grid { rows; cols } -> grid_endpoints ~rows ~cols ~m:(m t) e

let edges t = Array.init (m t) (fun e -> edge_endpoints t e)

let iter_edges t f =
  match t.shape with
  | Csr c ->
    for e = 0 to Array.length c.e_src - 1 do
      f e c.e_src.(e) c.e_dst.(e)
    done
  | Clique { transposed } -> (
    (* Walk the emission order backwards — edge id ascending — with no
       per-edge division: this is the path the implicit-backend stream
       build takes over all m edges. *)
    let n = t.n in
    let e = ref 0 in
    match t.kind with
    | Directed ->
      for u = n - 1 downto 0 do
        for j = n - 2 downto 0 do
          let v = if j < u then j else j + 1 in
          if transposed then f !e v u else f !e u v;
          incr e
        done
      done
    | Undirected ->
      for u = n - 2 downto 0 do
        for v = n - 1 downto u + 1 do
          f !e u v;
          incr e
        done
      done)
  | Star ->
    for e = 0 to t.n - 2 do
      f e 0 (e + 1)
    done
  | Grid { rows; cols } ->
    let e = ref 0 in
    let cell r c = (r * cols) + c in
    for r = rows - 1 downto 0 do
      for c = cols - 1 downto 0 do
        (* Per-cell emission was h then v; reversed order is v then h. *)
        if r + 1 < rows then begin
          f !e (cell r c) (cell (r + 1) c);
          incr e
        end;
        if c + 1 < cols then begin
          f !e (cell r c) (cell r (c + 1));
          incr e
        end
      done
    done

(* Arcs out of / into a vertex, in edge-id-ascending order — exactly
   the order the CSR build appends them in. *)
let iter_out t v f =
  match t.shape with
  | Csr c ->
    for i = c.out_off.(v) to c.out_off.(v + 1) - 1 do
      f (Array.unsafe_get c.out_edge i) (Array.unsafe_get c.out_vert i)
    done
  | Clique { transposed } -> (
    let n = t.n in
    match t.kind with
    | Directed ->
      if transposed then begin
        (* Out-arcs of the transpose are in-arcs of the base clique. *)
        let mm = m t in
        for u = n - 1 downto 0 do
          if u <> v then f (clique_dir_edge ~n ~m:mm u v) u
        done
      end
      else begin
        let base = m t - 1 - (v * (n - 1)) in
        for j = n - 2 downto 0 do
          f (base - j) (if j < v then j else j + 1)
        done
      end
    | Undirected ->
      let mm = m t in
      for w = n - 1 downto v + 1 do
        f (clique_und_edge ~n ~m:mm v w) w
      done;
      for u = v - 1 downto 0 do
        f (clique_und_edge ~n ~m:mm u v) u
      done)
  | Star ->
    if v = 0 then
      for e = 0 to t.n - 2 do
        f e (e + 1)
      done
    else f (v - 1) 0
  | Grid { rows; cols } ->
    let mm = m t in
    let r = v / cols and c = v mod cols in
    let cell r c = (r * cols) + c in
    (* Edge-id ascending = emission descending: down, right, left, up. *)
    if r < rows - 1 then f (mm - 1 - grid_v_emit ~rows ~cols r c) (cell (r + 1) c);
    if c < cols - 1 then f (mm - 1 - grid_h_emit ~rows ~cols r c) (cell r (c + 1));
    if c > 0 then f (mm - 1 - grid_h_emit ~rows ~cols r (c - 1)) (cell r (c - 1));
    if r > 0 then f (mm - 1 - grid_v_emit ~rows ~cols (r - 1) c) (cell (r - 1) c)

let iter_in t v f =
  match t.shape with
  | Csr c ->
    for i = c.in_off.(v) to c.in_off.(v + 1) - 1 do
      f (Array.unsafe_get c.in_edge i) (Array.unsafe_get c.in_vert i)
    done
  | Clique { transposed } when t.kind = Directed ->
    let n = t.n in
    let mm = m t in
    if transposed then begin
      let base = mm - 1 - (v * (n - 1)) in
      for j = n - 2 downto 0 do
        f (base - j) (if j < v then j else j + 1)
      done
    end
    else
      for u = n - 1 downto 0 do
        if u <> v then f (clique_dir_edge ~n ~m:mm u v) u
      done
  | Clique _ | Star | Grid _ -> iter_out t v f

let out_degree t v =
  match t.shape with
  | Csr c -> c.out_off.(v + 1) - c.out_off.(v)
  | Clique _ -> t.n - 1
  | Star -> if v = 0 then t.n - 1 else 1
  | Grid { rows; cols } ->
    let r = v / cols and c = v mod cols in
    (if r > 0 then 1 else 0)
    + (if r < rows - 1 then 1 else 0)
    + (if c > 0 then 1 else 0)
    + if c < cols - 1 then 1 else 0

let in_degree t v =
  match t.shape with
  | Csr c -> c.in_off.(v + 1) - c.in_off.(v)
  | Clique _ | Star | Grid _ -> out_degree t v

let out_arcs t v =
  match t.shape with
  | Csr c ->
    let lo = c.out_off.(v) in
    Array.init (c.out_off.(v + 1) - lo) (fun i ->
        (c.out_edge.(lo + i), c.out_vert.(lo + i)))
  | _ ->
    let arr = Array.make (out_degree t v) (0, 0) in
    let i = ref 0 in
    iter_out t v (fun e w ->
        arr.(!i) <- (e, w);
        incr i);
    arr

let in_arcs t v =
  match t.shape with
  | Csr c ->
    let lo = c.in_off.(v) in
    Array.init (c.in_off.(v + 1) - lo) (fun i ->
        (c.in_edge.(lo + i), c.in_vert.(lo + i)))
  | _ ->
    let arr = Array.make (in_degree t v) (0, 0) in
    let i = ref 0 in
    iter_in t v (fun e w ->
        arr.(!i) <- (e, w);
        incr i);
    arr

let out_neighbors t v = Array.map snd (out_arcs t v)
let in_neighbors t v = Array.map snd (in_arcs t v)

let find_edge t u v =
  match t.shape with
  | Csr c ->
    let rec scan i =
      if i >= c.out_off.(u + 1) then None
      else if c.out_vert.(i) = v then Some c.out_edge.(i)
      else scan (i + 1)
    in
    scan c.out_off.(u)
  | Clique { transposed } ->
    if u = v || u < 0 || v < 0 || u >= t.n || v >= t.n then None
    else
      Some
        (match t.kind with
        | Directed ->
          if transposed then clique_dir_edge ~n:t.n ~m:(m t) v u
          else clique_dir_edge ~n:t.n ~m:(m t) u v
        | Undirected -> clique_und_edge ~n:t.n ~m:(m t) u v)
  | Star ->
    if u = 0 && v > 0 && v < t.n then Some (v - 1)
    else if v = 0 && u > 0 && u < t.n then Some (u - 1)
    else None
  | Grid { rows; cols } ->
    if u < 0 || v < 0 || u >= t.n || v >= t.n then None
    else begin
      let a, b = if u < v then (u, v) else (v, u) in
      let ra = a / cols and ca = a mod cols in
      let mm = m t in
      if b = a + 1 && ca < cols - 1 then
        Some (mm - 1 - grid_h_emit ~rows ~cols ra ca)
      else if b = a + cols && ra < rows - 1 then
        Some (mm - 1 - grid_v_emit ~rows ~cols ra ca)
      else None
    end

let mem_edge t u v = find_edge t u v <> None

let reverse t =
  match t.shape with
  | Csr c -> (
    match t.kind with
    | Undirected -> t
    | Directed ->
      {
        t with
        shape =
          Csr
            {
              e_src = c.e_dst;
              e_dst = c.e_src;
              out_off = c.in_off;
              out_edge = c.in_edge;
              out_vert = c.in_vert;
              in_off = c.out_off;
              in_edge = c.out_edge;
              in_vert = c.out_vert;
            };
      })
  | Clique { transposed } when t.kind = Directed ->
    { t with shape = Clique { transposed = not transposed } }
  | Clique _ | Star | Grid _ -> t

let pp ppf t =
  Format.fprintf ppf "%s graph: n=%d m=%d"
    (match t.kind with Directed -> "directed" | Undirected -> "undirected")
    t.n (m t)
