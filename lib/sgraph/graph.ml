type kind = Directed | Undirected

(* Flat CSR layout: arcs out of [v] occupy rows [out_off.(v)] to
   [out_off.(v+1) - 1] of the parallel [out_edge]/[out_vert] arrays (and
   symmetrically for incoming arcs).  Everything is an unboxed int
   array: no tuples, no per-vertex array headers, and adjacency scans
   touch two cache-friendly flat ranges instead of chasing pointers.
   For undirected graphs the in- and out-CSR are the same arc sequence,
   so they share storage. *)
type t = {
  kind : kind;
  n : int;
  e_src : int array;  (* edge id -> source (min endpoint if undirected) *)
  e_dst : int array;
  out_off : int array;  (* length n + 1 *)
  out_edge : int array;  (* arc row -> edge id *)
  out_vert : int array;  (* arc row -> target vertex *)
  in_off : int array;
  in_edge : int array;
  in_vert : int array;  (* arc row -> source vertex *)
}

let kind t = t.kind
let is_directed t = t.kind = Directed
let n t = t.n
let m t = Array.length t.e_src

let arc_count t =
  match t.kind with Directed -> m t | Undirected -> 2 * m t

(* Build the CSR indexes from validated endpoint arrays.  Arcs are
   appended in edge-id order, an undirected edge contributing u->v then
   v->u — the per-vertex arc order every deterministic consumer (walker
   sampling, journey tie-breaks) relies on. *)
let build kind n e_src e_dst =
  let m = Array.length e_src in
  let out_count = Array.make (n + 1) 0 in
  let in_count = if kind = Undirected then out_count else Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    let u = e_src.(e) and v = e_dst.(e) in
    out_count.(u) <- out_count.(u) + 1;
    in_count.(v) <- in_count.(v) + 1
  done;
  let offsets count =
    let off = Array.make (n + 1) 0 in
    let sum = ref 0 in
    for v = 0 to n - 1 do
      off.(v) <- !sum;
      sum := !sum + count.(v)
    done;
    off.(n) <- !sum;
    (off, !sum)
  in
  let out_off, out_total = offsets out_count in
  let fill = Array.copy out_off in
  let out_edge = Array.make out_total 0 in
  let out_vert = Array.make out_total 0 in
  (match kind with
  | Undirected ->
    (* Shared arc table: out rows of w are exactly the in rows of w
       (same edge, opposite endpoint), in the same append order. *)
    for e = 0 to m - 1 do
      let u = e_src.(e) and v = e_dst.(e) in
      let pu = fill.(u) in
      out_edge.(pu) <- e;
      out_vert.(pu) <- v;
      fill.(u) <- pu + 1;
      let pv = fill.(v) in
      out_edge.(pv) <- e;
      out_vert.(pv) <- u;
      fill.(v) <- pv + 1
    done;
    {
      kind; n; e_src; e_dst;
      out_off; out_edge; out_vert;
      in_off = out_off; in_edge = out_edge; in_vert = out_vert;
    }
  | Directed ->
    let in_off, in_total = offsets in_count in
    let in_fill = Array.copy in_off in
    let in_edge = Array.make in_total 0 in
    let in_vert = Array.make in_total 0 in
    for e = 0 to m - 1 do
      let u = e_src.(e) and v = e_dst.(e) in
      let pu = fill.(u) in
      out_edge.(pu) <- e;
      out_vert.(pu) <- v;
      fill.(u) <- pu + 1;
      let pv = in_fill.(v) in
      in_edge.(pv) <- e;
      in_vert.(pv) <- u;
      in_fill.(v) <- pv + 1
    done;
    { kind; n; e_src; e_dst; out_off; out_edge; out_vert; in_off; in_edge; in_vert })

let of_arrays kind ~n e_src e_dst =
  if n < 0 then invalid_arg "Graph.of_arrays: negative vertex count";
  let m = Array.length e_src in
  if Array.length e_dst <> m then
    invalid_arg "Graph.of_arrays: endpoint arrays differ in length";
  for e = 0 to m - 1 do
    let u = e_src.(e) and v = e_dst.(e) in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.of_arrays: endpoint out of range (%d,%d)" u v);
    if u = v then invalid_arg "Graph.of_arrays: self-loop";
    if kind = Undirected && u > v then begin
      e_src.(e) <- v;
      e_dst.(e) <- u
    end
  done;
  build kind n e_src e_dst

let create kind ~n edges =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  let normalise (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: endpoint out of range (%d,%d)" u v);
    if u = v then invalid_arg "Graph.create: self-loop";
    match kind with
    | Directed -> (u, v)
    | Undirected -> if u < v then (u, v) else (v, u)
  in
  let edges = Array.of_list (List.map normalise edges) in
  let seen = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun edge ->
      if Hashtbl.mem seen edge then
        invalid_arg "Graph.create: duplicate edge"
      else Hashtbl.add seen edge ())
    edges;
  build kind n (Array.map fst edges) (Array.map snd edges)

let edge_endpoints t e =
  if e < 0 || e >= m t then invalid_arg "Graph.edge_endpoints: bad edge id";
  (t.e_src.(e), t.e_dst.(e))

let edges t = Array.init (m t) (fun e -> (t.e_src.(e), t.e_dst.(e)))

let iter_edges t f =
  for e = 0 to m t - 1 do
    f e t.e_src.(e) t.e_dst.(e)
  done

let out_arcs t v =
  let lo = t.out_off.(v) in
  Array.init (t.out_off.(v + 1) - lo) (fun i ->
      (t.out_edge.(lo + i), t.out_vert.(lo + i)))

let in_arcs t v =
  let lo = t.in_off.(v) in
  Array.init (t.in_off.(v + 1) - lo) (fun i ->
      (t.in_edge.(lo + i), t.in_vert.(lo + i)))

let iter_out t v f =
  for i = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    f (Array.unsafe_get t.out_edge i) (Array.unsafe_get t.out_vert i)
  done

let iter_in t v f =
  for i = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    f (Array.unsafe_get t.in_edge i) (Array.unsafe_get t.in_vert i)
  done

let out_neighbors t v =
  let lo = t.out_off.(v) in
  Array.init (t.out_off.(v + 1) - lo) (fun i -> t.out_vert.(lo + i))

let in_neighbors t v =
  let lo = t.in_off.(v) in
  Array.init (t.in_off.(v + 1) - lo) (fun i -> t.in_vert.(lo + i))

let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)
let in_degree t v = t.in_off.(v + 1) - t.in_off.(v)

let find_edge t u v =
  let rec scan i =
    if i >= t.out_off.(u + 1) then None
    else if t.out_vert.(i) = v then Some t.out_edge.(i)
    else scan (i + 1)
  in
  scan t.out_off.(u)

let mem_edge t u v = find_edge t u v <> None

let reverse t =
  match t.kind with
  | Undirected -> t
  | Directed ->
    {
      t with
      e_src = t.e_dst;
      e_dst = t.e_src;
      out_off = t.in_off;
      out_edge = t.in_edge;
      out_vert = t.in_vert;
      in_off = t.out_off;
      in_edge = t.out_edge;
      in_vert = t.out_vert;
    }

let pp ppf t =
  Format.fprintf ppf "%s graph: n=%d m=%d"
    (match t.kind with Directed -> "directed" | Undirected -> "undirected")
    t.n (m t)
