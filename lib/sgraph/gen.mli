(** Graph generators: every underlying graph the paper's experiments need.

    Deterministic families (clique, star, path, …) plus the Erdős–Rényi
    random graphs used in the proofs of Theorem 5 and the Ω(log n)
    remark. *)

val clique : Graph.kind -> int -> Graph.t
(** [clique kind n]: the complete graph [K_n]; directed means both arcs
    [(u,v)] and [(v,u)] exist, as in the paper's §3 model.
    @raise Invalid_argument if [n < 1]. *)

val star : int -> Graph.t
(** [star n]: undirected [K_{1,n-1}] with centre [0] (Theorem 6's graph).
    @raise Invalid_argument if [n < 2]. *)

val clique_implicit : Graph.kind -> int -> Graph.t
(** [clique_implicit kind n]: {!clique} as an O(1)-memory implicit
    shape — identical numbering, no CSR arrays.  See
    {!Graph.implicit_clique}. *)

val star_implicit : int -> Graph.t
(** [star_implicit n]: {!star} as an O(1)-memory implicit shape. *)

val grid_implicit : int -> int -> Graph.t
(** [grid_implicit rows cols]: {!grid} as an O(1)-memory implicit
    shape. *)

val path : int -> Graph.t
(** [path n]: undirected path [0 - 1 - ... - n-1]. *)

val cycle : int -> Graph.t
(** [cycle n]: undirected cycle; [n >= 3]. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: [K_{a,b}] with left part [0..a-1]. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: undirected 2-d lattice, vertex [(r,c)] at
    [r*cols + c]. *)

val hypercube : int -> Graph.t
(** [hypercube d]: the [d]-dimensional binary hypercube on [2^d]
    vertices; [d >= 1]. *)

val binary_tree : int -> Graph.t
(** [binary_tree n]: the first [n] vertices of the complete binary tree
    in heap order (vertex [i]'s parent is [(i-1)/2]); [n >= 1]. *)

val wheel : int -> Graph.t
(** [wheel n]: hub [0] joined to a cycle on [1..n-1]; [n >= 4]. *)

val barbell : int -> Graph.t
(** [barbell k]: two [K_k] cliques joined by one bridge edge; [k >= 2].
    [2k] vertices; a classic small-cut stress case. *)

val lollipop : int -> int -> Graph.t
(** [lollipop k len]: a [K_k] clique with a path of [len] extra vertices
    attached; [k >= 2], [len >= 1]. *)

val random_tree : Prng.Rng.t -> int -> Graph.t
(** [random_tree rng n]: a uniform labelled tree via a random Prüfer
    sequence; [n >= 1] ([n <= 2] has no Prüfer freedom). *)

val gnp : Prng.Rng.t -> n:int -> p:float -> Graph.t
(** [gnp rng ~n ~p]: Erdős–Rényi [G(n,p)], each of the [n(n-1)/2]
    undirected edges present independently with probability [p].  Uses
    geometric skipping, so sparse graphs cost O(n + m). *)

val gnm : Prng.Rng.t -> n:int -> m:int -> Graph.t
(** [gnm rng ~n ~m]: uniform graph with exactly [m] distinct edges.
    @raise Invalid_argument if [m] exceeds [n(n-1)/2]. *)

val barabasi_albert : Prng.Rng.t -> n:int -> m:int -> Graph.t
(** [barabasi_albert rng ~n ~m]: preferential attachment — start from a
    clique on [m+1] vertices, then each new vertex attaches to [m]
    distinct existing vertices chosen proportionally to their degree.
    Always connected; heavy-tailed degrees.
    @raise Invalid_argument unless [1 <= m < n]. *)

val watts_strogatz : Prng.Rng.t -> n:int -> k:int -> beta:float -> Graph.t
(** [watts_strogatz rng ~n ~k ~beta]: small world — a ring lattice where
    every vertex joins its [k] nearest neighbours on each side, then
    each lattice edge is rewired with probability [beta] to a uniform
    random non-duplicate endpoint.
    @raise Invalid_argument unless [k >= 1], [2k < n - 1] and
    [beta ∈ \[0,1\]]. *)
