(** Static (di)graphs: the underlying graphs [G = (V, E)] of temporal
    networks (paper, Definition 1).

    Vertices are [0 .. n-1].  Edges are stored once each and identified by
    a dense integer id — temporal label assignments are arrays indexed by
    that id.  An undirected edge is crossable in both directions under the
    same labels; a directed edge only from its source to its target
    (paper §2).  Self-loops and parallel edges are rejected: neither
    occurs in any construction of the paper.

    Adjacency is stored in CSR form (per-vertex offsets into flat int
    arrays), so the non-allocating {!iter_out}/{!iter_in} scans are the
    fast path; the tuple-array accessors {!out_arcs}/{!in_arcs} build a
    fresh boxed copy per call and are kept for convenience and tests.

    A few regular topologies also exist as {e implicit shapes}
    ({!implicit_clique}, {!implicit_star}, {!implicit_grid}): O(1)-memory
    values whose adjacency and edge-id decode are pure arithmetic.  They
    use the exact vertex and edge numbering of the corresponding
    {!Gen} generators and their iterators visit arcs in the same
    edge-id-ascending order as the CSR build, so the two forms are
    observationally identical — the implicit form just has no O(n + m)
    arrays behind it, which is what lets derived-label temporal
    instances scale past the CSR memory wall. *)

type kind = Directed | Undirected

type t

val create : kind -> n:int -> (int * int) list -> t
(** [create kind ~n edges] builds a graph on [n] vertices.  For
    [Undirected], edge pairs are normalised to [(min, max)].
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    duplicate edges (including [(u,v)] vs [(v,u)] when undirected). *)

val of_arrays : kind -> n:int -> int array -> int array -> t
(** [of_arrays kind ~n src dst] is the trusted constructor for
    generator-produced edge sets: edge id [e] runs from [src.(e)] to
    [dst.(e)].  Endpoints are range- and self-loop-checked (O(m)), and
    undirected pairs are normalised in place, but {e duplicates are not
    detected} — the caller vouches for distinctness.  Takes ownership
    of both arrays; do not reuse them.
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    mismatched array lengths. *)

val implicit_clique : kind -> int -> t
(** [implicit_clique kind n] is the complete graph on [n] vertices as an
    O(1)-memory shape, numbered exactly like [Gen.clique kind n].
    @raise Invalid_argument if [n < 1]. *)

val implicit_star : int -> t
(** [implicit_star n] is the undirected star with centre [0] as an
    O(1)-memory shape, numbered exactly like [Gen.star n].
    @raise Invalid_argument if [n < 2]. *)

val implicit_grid : rows:int -> cols:int -> t
(** [implicit_grid ~rows ~cols] is the undirected grid as an O(1)-memory
    shape, numbered exactly like [Gen.grid rows cols].
    @raise Invalid_argument if either dimension is [< 1]. *)

val is_implicit : t -> bool
(** True when the graph is an arithmetic shape rather than a CSR. *)

val kind : t -> kind
val is_directed : t -> bool

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of stored edges (arcs if directed). *)

val arc_count : t -> int
(** Number of traversable directions: [m] if directed, [2m] otherwise. *)

val edge_endpoints : t -> int -> int * int
(** [edge_endpoints g e] is the endpoint pair of edge id [e].
    @raise Invalid_argument on a bad id. *)

val edges : t -> (int * int) array
(** A copy of the edge array, index = edge id. *)

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f e u v] for every edge id [e] = [(u,v)]. *)

val out_neighbors : t -> int -> int array
(** Targets reachable by one traversable arc out of the vertex (do not
    mutate the returned array). *)

val in_neighbors : t -> int -> int array

val out_arcs : t -> int -> (int * int) array
(** [(edge id, target)] pairs for each traversable arc out of the vertex.
    Allocates a fresh array per call — use {!iter_out} on hot paths. *)

val in_arcs : t -> int -> (int * int) array
(** [(edge id, source)] pairs for each traversable arc into the vertex.
    Allocates a fresh array per call — use {!iter_in} on hot paths. *)

val iter_out : t -> int -> (int -> int -> unit) -> unit
(** [iter_out g v f] calls [f edge target] for each traversable arc out
    of [v], in edge-id append order, without allocating. *)

val iter_in : t -> int -> (int -> int -> unit) -> unit
(** [iter_in g v f] calls [f edge source] for each traversable arc into
    [v], without allocating. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] — is there a traversable arc from [u] to [v]? *)

val find_edge : t -> int -> int -> int option
(** Edge id of the arc from [u] to [v], if any. *)

val reverse : t -> t
(** The reverse digraph; the identity on undirected graphs.  Edge ids are
    preserved. *)

val pp : Format.formatter -> t -> unit
