(** Breadth- and depth-first traversal. *)

val unreachable : int
(** Sentinel distance for unreachable vertices ([max_int]). *)

val bfs : Graph.t -> int -> int array
(** [bfs g s] is the array of hop distances from [s] along traversable
    arcs; {!unreachable} where no path exists. *)

val bfs_into : Graph.t -> int -> dist:int array -> queue:int array -> unit
(** Allocation-free [bfs] into caller-owned scratch: [dist] and [queue]
    must each hold at least [n g] entries; on return [dist.(0 .. n-1)]
    holds the hop distances (entries beyond [n] are untouched) and
    [queue]'s contents are meaningless.  The workhorse behind repeated
    per-source sweeps that reuse one pair of arrays.
    @raise Invalid_argument on a bad source. *)

val bfs_tree : Graph.t -> int -> int array * int array
(** [bfs_tree g s] is [(dist, parent)]; [parent.(v) = -1] for [s] and for
    unreachable vertices. *)

val bfs_reverse : Graph.t -> int -> int array
(** Distances *to* the given vertex (BFS along incoming arcs). *)

val dfs_order : Graph.t -> int -> int list
(** Preorder list of the vertices reachable from the root. *)

val reachable_count : Graph.t -> int -> int
(** Number of vertices reachable from the vertex (including itself). *)
