let interval ?(confidence = 0.95) ?(resamples = 1000) ?(widen = 1.0) ~statistic
    rng xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bootstrap.interval: empty sample";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Bootstrap.interval: confidence must be in (0,1)";
  if resamples < 1 then invalid_arg "Bootstrap.interval: resamples must be >= 1";
  if not (widen >= 1.) then invalid_arg "Bootstrap.interval: widen must be >= 1";
  let stats =
    Array.init resamples (fun _ ->
        let resample = Array.init n (fun _ -> xs.(Prng.Rng.int rng n)) in
        statistic resample)
  in
  let tail = (1. -. confidence) /. 2. in
  let ci =
    {
      Ci.lo = Quantile.quantile stats tail;
      hi = Quantile.quantile stats (1. -. tail);
    }
  in
  (* A degraded run (trials dropped by --keep-going) widens the CI
     around its midpoint to own up to the thinner sample.  widen = 1.
     must stay bit-identical to the unwidened interval, so it touches
     nothing. *)
  if widen = 1.0 then ci
  else begin
    let mid = (ci.lo +. ci.hi) /. 2. in
    let half = (ci.hi -. ci.lo) /. 2. in
    { Ci.lo = mid -. (half *. widen); hi = mid +. (half *. widen) }
  end

let mean xs =
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let mean_interval ?confidence ?resamples ?widen rng xs =
  interval ?confidence ?resamples ?widen ~statistic:mean rng xs

let median_interval ?confidence ?resamples ?widen rng xs =
  interval ?confidence ?resamples ?widen ~statistic:Quantile.median rng xs
