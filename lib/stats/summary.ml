type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = Float.nan; max = Float.nan; total = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  t.total <- t.total +. x;
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add_int t x = add t (float_of_int x)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
    {
      n;
      mean;
      m2;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      total = a.total +. b.total;
    }

let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let stderr_mean t =
  if t.n = 0 then Float.nan else stddev t /. sqrt (float_of_int t.n)

let min t = t.min
let max t = t.max
let total t = t.total

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
    (stddev t) t.min t.max

(* Serialization hooks (Store.Codec).  Kept last: the record re-uses
   the field names of [t], and letting it shadow them above would
   break inference in the accessors. *)

type raw = {
  n : int;
  mean : float;
  m2 : float;
  min : float;
  max : float;
  total : float;
}

let to_raw (t : t) : raw =
  { n = t.n; mean = t.mean; m2 = t.m2; min = t.min; max = t.max; total = t.total }

let of_raw (r : raw) : t =
  { n = r.n; mean = r.mean; m2 = r.m2; min = r.min; max = r.max; total = r.total }
