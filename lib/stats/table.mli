(** Result tables: the reproduction's replacement for the paper's "Tables".

    A table is a titled grid of typed cells; it renders to aligned ASCII
    (for the terminal), CSV (for downstream tooling), and Markdown (for
    EXPERIMENTS.md).  Every experiment in [Sim.Experiments] returns one. *)

type cell = Int of int | Float of float * int  (** value, decimals *)
          | Str of string | Pct of float  (** 0..1, rendered as percent *)

type t

val create : title:string -> columns:string list -> t
(** A fresh table; rows are appended with {!add_row}. *)

val title : t -> string
val columns : t -> string list

val add_row : t -> cell list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val rows : t -> cell list list
(** Rows in insertion order. *)

val degraded : t -> bool
val set_degraded : t -> unit
(** Mark the table as holding partial results (a [--keep-going] run
    that dropped failed trials).  Every renderer then appends an
    explicit marker: a bracketed line in ASCII, a [#]-comment line in
    CSV, an emphasized line in Markdown. *)

val cell_to_string : cell -> string

val column_floats : t -> string -> float list
(** [column_floats t name] extracts a column's numeric values ([Int],
    [Float] and [Pct] cells; [Str] cells are skipped).
    @raise Not_found if no column has that name. *)

val to_ascii : t -> string
(** Box-drawing-free aligned text, title included. *)

val to_csv : t -> string
val to_markdown : t -> string
