(** Streaming univariate summary statistics (Welford's algorithm).

    Numerically stable single-pass mean/variance with min/max tracking;
    the accumulator every Monte-Carlo experiment feeds its per-trial
    measurements into. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having observed both
    streams (Chan et al. parallel variance update). *)

val count : t -> int

val mean : t -> float
(** Mean of the observations; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float

val stderr_mean : t -> float
(** Standard error of the mean, [stddev / sqrt count]. *)

val min : t -> float
(** [nan] if empty. *)

val max : t -> float
(** [nan] if empty. *)

val total : t -> float

val of_array : float array -> t
val pp : Format.formatter -> t -> unit

(** {2 Serialization hooks}

    The exact accumulator state, for binary codecs (lib/store).
    [of_raw (to_raw t)] observes identically to [t], bit for bit —
    including the [nan] min/max of an empty summary. *)

type raw = {
  n : int;
  mean : float;
  m2 : float;
  min : float;
  max : float;
  total : float;
}

val to_raw : t -> raw
val of_raw : raw -> t
