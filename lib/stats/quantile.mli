(** Exact quantiles of a finite sample.

    Linear-interpolation quantiles (type-7, the R/NumPy default), computed
    from a sorted copy of the data. *)

val of_sorted : float array -> float -> float
(** [of_sorted xs q] with [xs] ascending and [q] in [\[0, 1\]].
    @raise Invalid_argument on empty input or [q] outside [\[0,1\]]. *)

val quantile : float array -> float -> float
(** [quantile xs q] sorts a copy of [xs] then applies {!of_sorted}. *)

val median : float array -> float

val iqr : float array -> float
(** Inter-quartile range, [q0.75 - q0.25]. *)

val quantiles : float array -> float list -> (float * float) list
(** [quantiles xs qs] evaluates several quantiles sharing one sort;
    returns [(q, value)] pairs in the order given. *)

val merge_sorted : float array -> float array -> float array
(** [merge_sorted xs ys] with both inputs ascending: their ascending
    union (with duplicates), in linear time.  Combines per-shard sorted
    samples (e.g. collected by parallel trial runs) so [of_sorted] on
    the result equals [quantile] on the concatenation — quantiles are
    order-statistics, so merging loses nothing. *)
