(** Percentile bootstrap confidence intervals.

    Nonparametric companion to {!Ci}: resample the observed sample with
    replacement, recompute the statistic, and read the interval off the
    percentiles of the resampled distribution.  Used where normality is
    dubious — e.g. instance temporal diameters, which are maxima and
    skew right.  Deterministic given the caller's RNG stream. *)

val interval :
  ?confidence:float ->
  ?resamples:int ->
  ?widen:float ->
  statistic:(float array -> float) ->
  Prng.Rng.t ->
  float array ->
  Ci.interval
(** [interval ~statistic rng xs] is the percentile bootstrap CI of
    [statistic xs] (default confidence 0.95, 1000 resamples).
    [widen] (default 1., must be >= 1.) scales the interval's
    half-width around its midpoint — degraded runs pass the
    [Sim.Supervise] factor here to own up to dropped trials; [1.]
    leaves the interval bit-identical to the unwidened one.
    @raise Invalid_argument on an empty sample, bad confidence,
    non-positive resample count, or [widen < 1]. *)

val mean_interval :
  ?confidence:float ->
  ?resamples:int ->
  ?widen:float ->
  Prng.Rng.t ->
  float array ->
  Ci.interval

val median_interval :
  ?confidence:float ->
  ?resamples:int ->
  ?widen:float ->
  Prng.Rng.t ->
  float array ->
  Ci.interval
