let of_sorted xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty sample";
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile.of_sorted: q not in [0,1]";
  if n = 1 then xs.(0)
  else
    let h = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))

let sorted_copy xs =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  copy

let quantile xs q = of_sorted (sorted_copy xs) q
let median xs = quantile xs 0.5

let iqr xs =
  let sorted = sorted_copy xs in
  of_sorted sorted 0.75 -. of_sorted sorted 0.25

let quantiles xs qs =
  let sorted = sorted_copy xs in
  List.map (fun q -> (q, of_sorted sorted q)) qs

let merge_sorted xs ys =
  let nx = Array.length xs and ny = Array.length ys in
  if nx = 0 then Array.copy ys
  else if ny = 0 then Array.copy xs
  else begin
    let out = Array.make (nx + ny) 0. in
    let i = ref 0 and j = ref 0 in
    for k = 0 to nx + ny - 1 do
      (* Take from xs on ties: a stable merge of ascending runs. *)
      if !i < nx && (!j >= ny || Float.compare xs.(!i) ys.(!j) <= 0) then begin
        out.(k) <- xs.(!i);
        incr i
      end
      else begin
        out.(k) <- ys.(!j);
        incr j
      end
    done;
    out
  end
