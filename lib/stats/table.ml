type cell = Int of int | Float of float * int | Str of string | Pct of float

type t = {
  title : string;
  columns : string list;
  width : int;
  mutable rev_rows : cell list list;
  mutable degraded : bool;
}

let create ~title ~columns =
  { title; columns; width = List.length columns; rev_rows = []; degraded = false }

let title t = t.title
let columns t = t.columns
let degraded t = t.degraded
let set_degraded t = t.degraded <- true

(* The marker every renderer appends: partial results must be visible
   in the terminal, the CSV and the Markdown alike, not only in the
   run's notes. *)
let degraded_marker = "degraded: partial results (failed trials excluded)"

let add_row t row =
  if List.length row <> t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: row has %d cells, table has %d columns"
         (List.length row) t.width);
  t.rev_rows <- row :: t.rev_rows

let rows t = List.rev t.rev_rows

let cell_to_string = function
  | Int i -> string_of_int i
  | Float (x, decimals) -> Printf.sprintf "%.*f" decimals x
  | Str s -> s
  | Pct p -> Printf.sprintf "%.1f%%" (100. *. p)

let column_floats t name =
  let rec index i = function
    | [] -> raise Not_found
    | c :: _ when c = name -> i
    | _ :: rest -> index (i + 1) rest
  in
  let idx = index 0 t.columns in
  List.filter_map
    (fun row ->
      match List.nth row idx with
      | Int i -> Some (float_of_int i)
      | Float (x, _) -> Some x
      | Pct p -> Some p
      | Str _ -> None)
    (rows t)

let render_grid t =
  let header = t.columns in
  let body = List.map (List.map cell_to_string) (rows t) in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) body)
      header
  in
  (header, body, widths)

let pad_left s w = String.make (w - String.length s) ' ' ^ s

let to_ascii t =
  let header, body, widths = render_grid t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length t.title) '=');
  Buffer.add_char buf '\n';
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad_left cell (List.nth widths i)))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  emit_row (List.map (fun w -> String.make w '-') widths);
  List.iter emit_row body;
  if t.degraded then Buffer.add_string buf ("[" ^ degraded_marker ^ "]\n");
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit_row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_escape cells));
    Buffer.add_char buf '\n'
  in
  emit_row t.columns;
  List.iter (fun row -> emit_row (List.map cell_to_string row)) (rows t);
  if t.degraded then Buffer.add_string buf ("# " ^ degraded_marker ^ "\n");
  Buffer.contents buf

let to_markdown t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "**%s**\n\n" t.title);
  let emit_row cells =
    Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n")
  in
  emit_row t.columns;
  emit_row (List.map (fun _ -> "---") t.columns);
  List.iter (fun row -> emit_row (List.map cell_to_string row)) (rows t);
  if t.degraded then Buffer.add_string buf ("\n*" ^ degraded_marker ^ "*\n");
  Buffer.contents buf
