(* lib/store: codec framing, content-addressed objects, gc, checkpoints
   and trial-level resume.

   Equality discipline: stored values are compared through re-encoding
   (encode (decode (encode x)) = encode x) — floats travel as IEEE-754
   bit patterns, so this is exact even for NaN payloads, infinities and
   signed zeros, with no float-equality pitfalls. *)

open Helpers
module Codec = Store.Codec
module Objects = Store.Objects
module Checkpoint = Store.Checkpoint

let check_string = Alcotest.(check string)

(* Fresh scratch directory per test; best-effort removal. *)
let with_tmp_dir f =
  let dir = Filename.temp_file "ephemeral-test" ".store" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> Store.Fsio.remove_tree dir) (fun () -> f dir)

let table ?(title = "t") rows =
  let t = Stats.Table.create ~title ~columns:[ "a"; "b" ] in
  List.iter (Stats.Table.add_row t) rows;
  t

let some_outcome () : Codec.outcome =
  {
    tables =
      [
        table ~title:"special floats"
          [
            [ Stats.Table.Float (Float.nan, 2); Stats.Table.Float (Float.infinity, 0) ];
            [ Stats.Table.Float (Float.neg_infinity, 4); Stats.Table.Float (-0., 1) ];
            [ Stats.Table.Int (-3); Stats.Table.Pct 0.375 ];
          ];
        table ~title:"empty" [];
        table ~title:"strings \"quoted\"" [ [ Stats.Table.Str "x,\ny"; Stats.Table.Str "" ] ];
      ];
    notes = [ "a note"; "with \"escapes\"\tand\ncontrol chars"; "" ];
    plots = [ "plot.svg" ];
  }

(* ------------------------------------------------------------------ *)
(* CRC-32 *)

let crc_cases =
  [
    case "check vector" (fun () ->
        (* The standard CRC-32 check value. *)
        Alcotest.(check int32) "123456789" 0xCBF43926l
          (Store.Crc32.digest "123456789"));
    case "empty is zero" (fun () ->
        Alcotest.(check int32) "empty" 0l (Store.Crc32.digest ""));
    case "digest_sub agrees with digest" (fun () ->
        let s = "abcdefghij" in
        Alcotest.(check int32) "sub"
          (Store.Crc32.digest (String.sub s 2 5))
          (Store.Crc32.digest_sub s ~pos:2 ~len:5));
    case "sensitive to each byte" (fun () ->
        let s = String.make 64 'a' in
        let d = Store.Crc32.digest s in
        for i = 0 to 63 do
          let b = Bytes.of_string s in
          Bytes.set b i 'b';
          check_bool (Printf.sprintf "byte %d" i) false
            (Store.Crc32.digest (Bytes.to_string b) = d)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Codec *)

let gen_cell =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Stats.Table.Int i) (int_range (-1000) 1000);
        (let* f =
           oneof
             [
               float;
               oneofl [ Float.nan; Float.infinity; Float.neg_infinity; -0.; 0. ];
             ]
         in
         let* d = int_range 0 6 in
         return (Stats.Table.Float (f, d)));
        map (fun s -> Stats.Table.Str s) (string_size ~gen:printable (int_range 0 12));
        map (fun p -> Stats.Table.Pct p) (float_bound_inclusive 1.);
      ])

let gen_table =
  QCheck2.Gen.(
    let* width = int_range 1 5 in
    let* title = string_size ~gen:printable (int_range 0 20) in
    let* rows = list_size (int_range 0 12) (list_repeat width gen_cell) in
    let t =
      Stats.Table.create ~title
        ~columns:(List.init width (Printf.sprintf "c%d"))
    in
    List.iter (Stats.Table.add_row t) rows;
    return t)

let codec_cases =
  [
    case "outcome round-trips and renders identically" (fun () ->
        let o = some_outcome () in
        let e = Codec.encode_outcome o in
        match Codec.decode_outcome e with
        | Error msg -> Alcotest.failf "decode failed: %s" msg
        | Ok o' ->
          check_string "re-encode" e (Codec.encode_outcome o');
          List.iter2
            (fun t t' ->
              check_string "ascii" (Stats.Table.to_ascii t) (Stats.Table.to_ascii t');
              check_string "csv" (Stats.Table.to_csv t) (Stats.Table.to_csv t');
              check_string "md" (Stats.Table.to_markdown t) (Stats.Table.to_markdown t'))
            o.tables o'.tables);
    case "summary round-trips bit for bit (incl. empty)" (fun () ->
        let s = Stats.Summary.of_array [| 1.5; -2.25; 0.; 42.0625 |] in
        let check_one name s =
          let e = Codec.encode_summary s in
          match Codec.decode_summary e with
          | Error msg -> Alcotest.failf "%s: %s" name msg
          | Ok s' -> check_string name e (Codec.encode_summary s')
        in
        check_one "filled" s;
        (* An empty summary's min/max are NaN — the hard case. *)
        check_one "empty" (Stats.Summary.create ()));
    case "truncation at every length is rejected" (fun () ->
        let e = Codec.encode_table (table [ [ Stats.Table.Int 1; Stats.Table.Int 2 ] ]) in
        for len = 0 to String.length e - 1 do
          match Codec.decode_table (String.sub e 0 len) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted a %d-byte truncation" len
        done);
    case "every single-bit flip is rejected" (fun () ->
        let e = Codec.encode_outcome (some_outcome ()) in
        for i = 0 to String.length e - 1 do
          for bit = 0 to 7 do
            let b = Bytes.of_string e in
            Bytes.set b i (Char.chr (Char.code e.[i] lxor (1 lsl bit)));
            match Codec.decode_outcome (Bytes.to_string b) with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted flip at byte %d bit %d" i bit
          done
        done);
    case "kind confusion is rejected" (fun () ->
        let e = Codec.encode_summary (Stats.Summary.create ()) in
        check_bool "summary as table" true (Result.is_error (Codec.decode_table e));
        check_bool "summary as outcome" true (Result.is_error (Codec.decode_outcome e)));
    case "trailing garbage is rejected" (fun () ->
        let e = Codec.encode_table (table []) in
        check_bool "garbage" true (Result.is_error (Codec.decode_table (e ^ "x"))));
    qcase ~count:200 "random tables round-trip" gen_table (fun t ->
        let e = Codec.encode_table t in
        match Codec.decode_table e with
        | Error _ -> false
        | Ok t' ->
          e = Codec.encode_table t'
          && Stats.Table.to_csv t = Stats.Table.to_csv t'
          && Stats.Table.to_ascii t = Stats.Table.to_ascii t');
  ]

(* ------------------------------------------------------------------ *)
(* Key *)

let key_cases =
  [
    case "stable and sensitive" (fun () ->
        let derive = Store.Key.derive in
        let k = derive ~exp_id:"e1" ~seed:1 ~quick:false ~backend:"dense" in
        check_string "deterministic" k
          (derive ~exp_id:"e1" ~seed:1 ~quick:false ~backend:"dense");
        let distinct =
          [
            derive ~exp_id:"e2" ~seed:1 ~quick:false ~backend:"dense";
            derive ~exp_id:"e1" ~seed:2 ~quick:false ~backend:"dense";
            derive ~exp_id:"e1" ~seed:1 ~quick:true ~backend:"dense";
            derive ~exp_id:"e1" ~seed:1 ~quick:false ~backend:"implicit";
          ]
        in
        List.iter (fun k' -> check_bool "distinct" false (k = k')) distinct);
    case "fingerprint is a nonempty digest over many files" (fun () ->
        check_bool "hex" true (String.length (Store.Key.fingerprint ()) = 32);
        check_bool "files" true (Store.Key.fingerprinted_sources () > 50));
  ]

(* ------------------------------------------------------------------ *)
(* Objects *)

let flip_byte path pos =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let count_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files -> Array.length files

let objects_cases =
  [
    case "put/get round-trip with metadata" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            let entry = Objects.put s ~key:"k1" ~meta:[ ("exp", "e1") ] "hello bytes" in
            check_int "size" 11 entry.size;
            (match Objects.get s ~key:"k1" with
            | Some (bytes, e) ->
              check_string "bytes" "hello bytes" bytes;
              check_string "digest" entry.digest e.digest;
              check_string "meta" "e1" (List.assoc "exp" e.meta)
            | None -> Alcotest.fail "expected a hit");
            check_bool "unknown key" true (Objects.get s ~key:"nope" = None)));
    case "index survives reopen" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            ignore (Objects.put s ~key:"k" ~meta:[ ("seed", "7") ] "payload");
            let s' = Objects.open_ ~dir in
            match Objects.get s' ~key:"k" with
            | Some (bytes, e) ->
              check_string "bytes" "payload" bytes;
              check_string "meta" "7" (List.assoc "seed" e.meta)
            | None -> Alcotest.fail "lost across reopen"));
    case "bit flip: miss, quarantine, repopulate" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            let entry = Objects.put s ~key:"k" ~meta:[] "some important bytes" in
            flip_byte (Objects.object_path s ~digest:entry.digest) 3;
            check_bool "corrupt read misses" true (Objects.get s ~key:"k" = None);
            check_bool "quarantined" true (count_files (Objects.quarantine_dir s) > 0);
            ignore (Objects.put s ~key:"k" ~meta:[] "some important bytes");
            match Objects.get s ~key:"k" with
            | Some (bytes, _) -> check_string "repopulated" "some important bytes" bytes
            | None -> Alcotest.fail "repopulation failed"));
    case "truncated object: miss, not a wrong answer" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            let entry = Objects.put s ~key:"k" ~meta:[] "0123456789" in
            let path = Objects.object_path s ~digest:entry.digest in
            let oc = open_out_bin path in
            output_string oc "0123";
            close_out oc;
            check_bool "miss" true (Objects.get s ~key:"k" = None)));
    case "identical put is idempotent" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            ignore (Objects.put s ~key:"k" ~meta:[] "same");
            ignore (Objects.put s ~key:"k" ~meta:[] "same");
            check_int "one manifest entry" 1 (List.length (Objects.entries s))));
    case "rebinding a key serves the new bytes" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            ignore (Objects.put s ~key:"k" ~meta:[] "old");
            ignore (Objects.put s ~key:"k" ~meta:[] "new");
            match Objects.get s ~key:"k" with
            | Some (bytes, _) -> check_string "latest wins" "new" bytes
            | None -> Alcotest.fail "expected a hit"));
    case "crash-truncated manifest line is skipped" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            ignore (Objects.put s ~key:"good" ~meta:[] "bytes");
            let oc =
              open_out_gen [ Open_append; Open_binary ] 0o644 (Objects.manifest_path s)
            in
            output_string oc "{\"key\":\"half";  (* no newline: torn write *)
            close_out oc;
            let s' = Objects.open_ ~dir in
            check_int "only the good entry" 1 (List.length (Objects.entries s'));
            check_bool "still served" true (Objects.get s' ~key:"good" <> None)));
  ]

(* ------------------------------------------------------------------ *)
(* Gc *)

let gc_cases =
  [
    case "keeps newest per key, drops superseded objects" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            ignore (Objects.put s ~key:"k" ~meta:[] "version one");
            ignore (Objects.put s ~key:"k" ~meta:[] "version two!");
            let stats = Store.Gc.run s in
            check_int "kept" 1 stats.kept;
            check_int "entries removed" 1 stats.removed_entries;
            check_int "objects removed" 1 stats.removed_objects;
            match Objects.get s ~key:"k" with
            | Some (bytes, _) -> check_string "live version" "version two!" bytes
            | None -> Alcotest.fail "live entry lost"));
    case "age bound drops old entries" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            let e = Objects.put s ~key:"old" ~meta:[] "old bytes" in
            let stats = Store.Gc.run ~max_age_s:60. ~now:(e.time +. 3600.) s in
            check_int "all dropped" 0 stats.kept;
            check_bool "gone" true (Objects.get s ~key:"old" = None)));
    case "size bound keeps newest first" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            ignore (Objects.put s ~key:"a" ~meta:[] (String.make 100 'a'));
            ignore (Objects.put s ~key:"b" ~meta:[] (String.make 100 'b'));
            let stats = Store.Gc.run ~max_bytes:150 s in
            check_int "one kept" 1 stats.kept;
            check_bool "newest survives" true (Objects.get s ~key:"b" <> None);
            check_bool "oldest dropped" true (Objects.get s ~key:"a" = None)));
    case "empties the quarantine" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            let entry = Objects.put s ~key:"k" ~meta:[] "bytes to corrupt" in
            flip_byte (Objects.object_path s ~digest:entry.digest) 0;
            ignore (Objects.get s ~key:"k");
            check_bool "something quarantined" true (count_files (Objects.quarantine_dir s) > 0);
            ignore (Store.Gc.run s);
            check_int "quarantine empty" 0 (count_files (Objects.quarantine_dir s))));
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoint + resume *)

let with_ctx dir run_key f =
  Checkpoint.activate ~dir ~run_key;
  Fun.protect ~finally:Checkpoint.deactivate f

let checkpoint_cases =
  [
    case "chunk bounds are a pure function of trials" (fun () ->
        List.iter
          (fun trials ->
            let c = Checkpoint.chunk_size ~trials in
            check_bool "positive" true (c >= 1);
            check_bool "<= 16 chunks" true ((trials + c - 1) / c <= 16))
          [ 1; 2; 15; 16; 17; 40; 100; 1000 ]);
    case "save/load round-trip" (fun () ->
        with_tmp_dir (fun dir ->
            with_ctx dir "rk" (fun () ->
                let slot = Option.get (Checkpoint.next_slot ~trials:10) in
                Checkpoint.save_chunk slot ~lo:0 ~hi:5 [| 10; 20; 30; 40; 50 |];
                match Checkpoint.load_chunk slot ~lo:0 ~hi:5 with
                | Some values -> Alcotest.(check (array int)) "values" [| 10; 20; 30; 40; 50 |] values
                | None -> Alcotest.fail "chunk not found")));
    case "missing / corrupted / misbounded chunks load as None" (fun () ->
        with_tmp_dir (fun dir ->
            with_ctx dir "rk" (fun () ->
                let slot = Option.get (Checkpoint.next_slot ~trials:10) in
                check_bool "missing" true
                  ((Checkpoint.load_chunk slot ~lo:0 ~hi:5 : int array option) = None);
                Checkpoint.save_chunk slot ~lo:0 ~hi:5 [| 1; 2; 3; 4; 5 |];
                check_bool "wrong bounds" true
                  ((Checkpoint.load_chunk slot ~lo:0 ~hi:6 : int array option) = None));
            check_int "one chunk on disk" 1 (Checkpoint.pending_chunks ~dir ~run_key:"rk");
            (* Corrupt the chunk file in place: it must load as None and
               be deleted so the trials recompute. *)
            with_ctx dir "rk" (fun () ->
                let slot = Option.get (Checkpoint.next_slot ~trials:10) in
                let sub = Filename.concat (Filename.concat dir "checkpoints") "rk" in
                Array.iter
                  (fun f -> flip_byte (Filename.concat sub f) 9)
                  (Sys.readdir sub);
                check_bool "corrupt" true
                  ((Checkpoint.load_chunk slot ~lo:0 ~hi:5 : int array option) = None));
            check_int "deleted" 0 (Checkpoint.pending_chunks ~dir ~run_key:"rk")));
    case "no context means no slots" (fun () ->
        check_bool "inactive" false (Checkpoint.active ());
        check_bool "no slot" true (Checkpoint.next_slot ~trials:5 = None));
    case "interrupt then resume is equivalent and skips loaded trials" (fun () ->
        with_tmp_dir (fun dir ->
            let trials = 40 in
            let f i trial_rng = (i * 1000) + Prng.Rng.int trial_rng 1000 in
            let fresh = Sim.Runner.map (rng ~seed:7 ()) ~trials f in
            (* Interrupted run: trial 17 explodes, so chunks past it are
               never written (chunk size for 40 trials is 3 — chunks
               [0,3) .. [12,15) land on disk, [15,18) dies mid-flight). *)
            (try
               with_ctx dir "rk" (fun () ->
                   ignore
                     (Sim.Runner.map (rng ~seed:7 ()) ~trials (fun i r ->
                          if i >= 17 then failwith "injected crash" else f i r)))
             with Failure _ -> ());
            check_bool "some chunks persisted" true
              (Checkpoint.pending_chunks ~dir ~run_key:"rk" > 0);
            (* Resumed run: same key, full function, tracking which
               trials actually execute. *)
            let executed = Array.make trials false in
            let resumed =
              with_ctx dir "rk" (fun () ->
                  Sim.Runner.map (rng ~seed:7 ()) ~trials (fun i r ->
                      executed.(i) <- true;
                      f i r))
            in
            Alcotest.(check (array int)) "resumed = fresh" fresh resumed;
            check_bool "early trials loaded, not re-executed" false executed.(0);
            check_bool "trial 14 loaded" false executed.(14);
            check_bool "trial 20 executed" true executed.(20);
            Checkpoint.clean ~dir ~run_key:"rk";
            check_int "cleaned" 0 (Checkpoint.pending_chunks ~dir ~run_key:"rk")));
    case "checkpointed run from scratch equals plain run" (fun () ->
        with_tmp_dir (fun dir ->
            let trials = 23 in
            let f _ trial_rng = Prng.Rng.float trial_rng in
            let plain = Sim.Runner.map (rng ~seed:9 ()) ~trials f in
            let ck =
              with_ctx dir "rk2" (fun () -> Sim.Runner.map (rng ~seed:9 ()) ~trials f)
            in
            Alcotest.(check (array (float 0.))) "identical" plain ck));
  ]

(* ------------------------------------------------------------------ *)
(* Cache + atomic report writes (satellites) *)

let cache_cases =
  [
    case "experiment outcome round-trips through the store" (fun () ->
        with_tmp_dir (fun dir ->
            match Sim.Experiments.find "e6" with
            | None -> Alcotest.fail "e6 not registered"
            | Some exp ->
              let s = Objects.open_ ~dir in
              let seed = Sim.Experiments.default_seed in
              check_bool "cold miss" true (Sim.Cache.get s exp ~seed ~quick:true = None);
              let outcome = exp.run ~quick:true ~seed in
              Sim.Cache.put s exp ~seed ~quick:true outcome;
              (match Sim.Cache.get s exp ~seed ~quick:true with
              | None -> Alcotest.fail "expected a hit"
              | Some cached ->
                check_string "renders identically" (Sim.Outcome.render outcome)
                  (Sim.Outcome.render cached));
              check_bool "other seed misses" true
                (Sim.Cache.get s exp ~seed:(seed + 1) ~quick:true = None)));
    case "report files publish atomically (no .tmp left behind)" (fun () ->
        with_tmp_dir (fun dir ->
            match Sim.Experiments.find "e6" with
            | None -> Alcotest.fail "e6 not registered"
            | Some exp ->
              let outcome = exp.run ~quick:true ~seed:1 in
              let paths = Sim.Report.save_csv ~dir exp outcome in
              let md = Sim.Report.save_markdown ~dir exp outcome in
              List.iter
                (fun p -> check_bool (p ^ " exists") true (Sys.file_exists p))
                (md :: paths);
              Array.iter
                (fun f ->
                  check_bool (f ^ " is not a temp file") false
                    (Filename.check_suffix f ".tmp"))
                (Sys.readdir dir)));
  ]

let suites =
  [
    ("store-crc32", crc_cases);
    ("store-codec", codec_cases);
    ("store-key", key_cases);
    ("store-objects", objects_cases);
    ("store-gc", gc_cases);
    ("store-checkpoint", checkpoint_cases);
    ("store-cache", cache_cases);
  ]
