(* Tests for lib/stats. *)

open Helpers
module Summary = Stats.Summary
module Quantile = Stats.Quantile
module Histogram = Stats.Histogram
module Ci = Stats.Ci
module Regression = Stats.Regression
module Bounds = Stats.Bounds
module Table = Stats.Table

(* --------------------------------------------------------------- *)
(* Summary *)

let summary_empty () =
  let s = Summary.create () in
  check_int "count" 0 (Summary.count s);
  check_bool "mean nan" true (Float.is_nan (Summary.mean s));
  check_bool "min nan" true (Float.is_nan (Summary.min s));
  check_float "variance" 0. (Summary.variance s)

let summary_single () =
  let s = Summary.of_array [| 3.5 |] in
  check_float "mean" 3.5 (Summary.mean s);
  check_float "variance" 0. (Summary.variance s);
  check_float "min" 3.5 (Summary.min s);
  check_float "max" 3.5 (Summary.max s)

let summary_known () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Summary.mean s);
  check_float ~eps:1e-9 "sample variance" 4.571428571428571 (Summary.variance s);
  check_float "min" 2. (Summary.min s);
  check_float "max" 9. (Summary.max s);
  check_float "total" 40. (Summary.total s);
  check_int "count" 8 (Summary.count s)

let summary_add_int () =
  let s = Summary.create () in
  List.iter (Summary.add_int s) [ 1; 2; 3 ];
  check_float "mean" 2. (Summary.mean s)

let summary_merge () =
  let xs = [| 1.; 5.; 2.; 8.; 3.; 9.; 4. |] in
  let a = Summary.of_array (Array.sub xs 0 3) in
  let b = Summary.of_array (Array.sub xs 3 4) in
  let merged = Summary.merge a b in
  let direct = Summary.of_array xs in
  check_int "count" (Summary.count direct) (Summary.count merged);
  check_float ~eps:1e-9 "mean" (Summary.mean direct) (Summary.mean merged);
  check_float ~eps:1e-9 "variance" (Summary.variance direct)
    (Summary.variance merged);
  check_float "min" (Summary.min direct) (Summary.min merged);
  check_float "max" (Summary.max direct) (Summary.max merged)

let summary_merge_empty () =
  let a = Summary.of_array [| 1.; 2. |] in
  let empty = Summary.create () in
  check_float "merge right empty" (Summary.mean a)
    (Summary.mean (Summary.merge a empty));
  check_float "merge left empty" (Summary.mean a)
    (Summary.mean (Summary.merge empty a))

let summary_stderr () =
  let s = Summary.of_array [| 1.; 2.; 3.; 4. |] in
  check_float ~eps:1e-9 "stderr = sd/sqrt n"
    (Summary.stddev s /. 2.)
    (Summary.stderr_mean s)

let summary_matches_naive =
  qcase "summary matches two-pass formulas"
    ~print:(fun l -> String.concat "," (List.map string_of_float l))
    QCheck2.Gen.(list_size (int_range 2 40) (float_bound_inclusive 100.))
    (fun l ->
      let xs = Array.of_list l in
      let s = Summary.of_array xs in
      let n = float_of_int (Array.length xs) in
      let mean = Array.fold_left ( +. ) 0. xs /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      abs_float (Summary.mean s -. mean) < 1e-6
      && abs_float (Summary.variance s -. var) < 1e-6)

(* --------------------------------------------------------------- *)
(* Quantile *)

let quantile_known () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "q0" 1. (Quantile.quantile xs 0.);
  check_float "q1" 4. (Quantile.quantile xs 1.);
  check_float "median interpolates" 2.5 (Quantile.median xs);
  check_float "q0.25" 1.75 (Quantile.quantile xs 0.25)

let quantile_single () =
  check_float "single point" 7. (Quantile.quantile [| 7. |] 0.3)

let quantile_unsorted_input () =
  check_float "copy is sorted internally" 2.5
    (Quantile.median [| 4.; 1.; 3.; 2. |])

let quantile_errors () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Quantile.of_sorted: empty sample") (fun () ->
      ignore (Quantile.quantile [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile.of_sorted: q not in [0,1]") (fun () ->
      ignore (Quantile.quantile [| 1. |] 1.5))

let quantile_iqr () =
  let xs = Array.init 101 float_of_int in
  check_float "iqr of 0..100" 50. (Quantile.iqr xs)

let quantile_many () =
  let xs = [| 10.; 20.; 30. |] in
  let result = Quantile.quantiles xs [ 0.; 0.5; 1. ] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "three quantiles"
    [ (0., 10.); (0.5, 20.); (1., 30.) ]
    result

let quantile_monotone =
  qcase "quantiles are monotone in q"
    ~print:(fun l -> String.concat "," (List.map string_of_float l))
    QCheck2.Gen.(list_size (int_range 1 30) (float_bound_inclusive 50.))
    (fun l ->
      let xs = Array.of_list l in
      Quantile.quantile xs 0.2 <= Quantile.quantile xs 0.8)

let merge_sorted_known () =
  Alcotest.(check (array (float 0.)))
    "interleaves with duplicates" [| 1.; 1.; 2.; 3.; 3.; 5. |]
    (Quantile.merge_sorted [| 1.; 3.; 5. |] [| 1.; 2.; 3. |]);
  Alcotest.(check (array (float 0.)))
    "left empty" [| 4.; 6. |]
    (Quantile.merge_sorted [||] [| 4.; 6. |]);
  Alcotest.(check (array (float 0.)))
    "right empty" [| 4.; 6. |]
    (Quantile.merge_sorted [| 4.; 6. |] [||])

(* merge_sorted over per-shard sorted samples = one global sort, so
   quantiles computed after the merge equal quantiles of the
   concatenation — the combine rule for parallel-collected samples. *)
let merge_sorted_matches_global_sort =
  qcase "merge_sorted of shards = sorted concatenation"
    ~print:(fun (a, b) ->
      let show l = String.concat "," (List.map string_of_float l) in
      Printf.sprintf "(%s | %s)" (show a) (show b))
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 25) (float_bound_inclusive 40.))
        (list_size (int_range 0 25) (float_bound_inclusive 40.)))
    (fun (a, b) ->
      let sorted l =
        let xs = Array.of_list l in
        Array.sort Float.compare xs;
        xs
      in
      let merged = Quantile.merge_sorted (sorted a) (sorted b) in
      merged = sorted (a @ b))

(* Left-fold of Summary.merge over any shard split reconstructs the
   whole-sample summary (to float tolerance) — the reduction used when
   per-domain partial summaries are ever combined. *)
let summary_merge_fold_matches_direct =
  qcase "fold of Summary.merge over shards matches direct"
    ~print:(fun l -> String.concat "," (List.map string_of_float l))
    QCheck2.Gen.(list_size (int_range 1 40) (float_bound_inclusive 100.))
    (fun l ->
      let xs = Array.of_list l in
      let n = Array.length xs in
      (* Split into up to 4 contiguous shards, some possibly empty. *)
      let shard i =
        let lo = i * n / 4 and hi = (i + 1) * n / 4 in
        Summary.of_array (Array.sub xs lo (hi - lo))
      in
      let folded =
        List.fold_left
          (fun acc i -> Summary.merge acc (shard i))
          (Summary.create ()) [ 0; 1; 2; 3 ]
      in
      let direct = Summary.of_array xs in
      let close a b =
        (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) < 1e-6
      in
      Summary.count folded = Summary.count direct
      && close (Summary.mean folded) (Summary.mean direct)
      && close (Summary.variance folded) (Summary.variance direct)
      && close (Summary.min folded) (Summary.min direct)
      && close (Summary.max folded) (Summary.max direct))

(* --------------------------------------------------------------- *)
(* Histogram *)

let histogram_counts () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.; 3.; 9.9; 10. ];
  Histogram.add h (-1.);
  Histogram.add h 11.;
  check_int "count includes oob" 7 (Histogram.count h);
  check_int "underflow" 1 (Histogram.underflow h);
  check_int "overflow" 1 (Histogram.overflow h);
  Alcotest.(check (array int)) "bin counts" [| 2; 1; 0; 0; 2 |]
    (Histogram.counts h)

let histogram_edges () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  let edges = Histogram.bin_edges h in
  check_float "first lo" 0. (fst edges.(0));
  check_float "first hi" 0.5 (snd edges.(0));
  check_float "second hi" 1. (snd edges.(1))

let histogram_mode () =
  let h = Histogram.create ~lo:0. ~hi:3. ~bins:3 in
  check_int "empty mode" (-1) (Histogram.mode_bin h);
  List.iter (Histogram.add h) [ 0.1; 1.5; 1.6 ];
  check_int "mode bin" 1 (Histogram.mode_bin h)

let histogram_render () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Histogram.add h 0.25;
  let s = Histogram.render h in
  check_bool "render mentions a bar" true (String.length s > 0)

let histogram_invalid () =
  Alcotest.check_raises "bins 0"
    (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "hi <= lo"
    (Invalid_argument "Histogram.create: need hi > lo") (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~bins:2))

(* --------------------------------------------------------------- *)
(* Ci *)

let ci_z_values () =
  check_float ~eps:1e-6 "z95" 1.9599639845 (Ci.z_of_confidence 0.95);
  check_float ~eps:1e-6 "z99" 2.5758293035 (Ci.z_of_confidence 0.99);
  check_float ~eps:1e-3 "generic level via quantile" 1.9599639845
    (Ci.z_of_confidence 0.9500001)

let ci_z_invalid () =
  Alcotest.check_raises "confidence out of range"
    (Invalid_argument "Ci.z_of_confidence: confidence must be in (0,1)")
    (fun () -> ignore (Ci.z_of_confidence 1.5))

let ci_mean_interval () =
  let s = Summary.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  let iv = Ci.mean_ci s in
  check_bool "contains the mean" true (iv.lo <= 3. && 3. <= iv.hi);
  check_bool "nonempty width" true (iv.hi > iv.lo)

let ci_wilson_known () =
  let iv = Ci.wilson ~trials:10 5 in
  check_bool "contains p hat" true (iv.lo < 0.5 && 0.5 < iv.hi);
  check_bool "within [0,1]" true (iv.lo >= 0. && iv.hi <= 1.)

let ci_wilson_extremes () =
  let zero = Ci.wilson ~trials:20 0 in
  check_float ~eps:1e-9 "0 successes: lo = 0" 0. zero.lo;
  check_bool "0 successes: hi > 0" true (zero.hi > 0.);
  let full = Ci.wilson ~trials:20 20 in
  check_float ~eps:1e-9 "all successes: hi = 1" 1. full.hi;
  check_bool "all successes: lo < 1" true (full.lo < 1.)

let ci_wilson_invalid () =
  Alcotest.check_raises "trials 0"
    (Invalid_argument "Ci.wilson: trials must be positive") (fun () ->
      ignore (Ci.wilson ~trials:0 0));
  Alcotest.check_raises "successes out of range"
    (Invalid_argument "Ci.wilson: successes out of range") (fun () ->
      ignore (Ci.wilson ~trials:5 6))

let ci_small_helpers () =
  check_float ~eps:1e-12 "proportion point" 0.25
    (Ci.proportion_point ~successes:5 ~trials:20);
  let rendered =
    Format.asprintf "%a" Ci.pp_interval { Ci.lo = 0.25; hi = 0.75 }
  in
  check_bool "interval renders" true (contains rendered "0.25")

let ci_wilson_narrows =
  qcase "wilson narrows with more trials" ~print:string_of_int
    QCheck2.Gen.(int_range 10 200)
    (fun trials ->
      let narrow = Ci.wilson ~trials:(trials * 4) (trials * 2) in
      let wide = Ci.wilson ~trials (trials / 2) in
      narrow.hi -. narrow.lo < wide.hi -. wide.lo +. 1e-9)

(* --------------------------------------------------------------- *)
(* Bootstrap *)

let bootstrap_mean_contains_truth () =
  let g = rng () in
  let xs = Array.init 200 (fun _ -> Prng.Rng.float g) in
  let iv = Stats.Bootstrap.mean_interval g xs in
  check_bool "interval around 0.5" true (iv.lo < 0.5 && 0.5 < iv.hi);
  check_bool "reasonably tight" true (iv.hi -. iv.lo < 0.2)

let bootstrap_median () =
  let g = rng () in
  let xs = Array.init 101 float_of_int in
  let iv = Stats.Bootstrap.median_interval g xs in
  check_bool "contains the median" true (iv.lo <= 50. && 50. <= iv.hi)

let bootstrap_degenerate_sample () =
  let g = rng () in
  let iv = Stats.Bootstrap.mean_interval g [| 7.; 7.; 7. |] in
  check_float "lo" 7. iv.lo;
  check_float "hi" 7. iv.hi

let bootstrap_custom_statistic () =
  let g = rng () in
  let xs = Array.init 50 (fun i -> float_of_int (i mod 10)) in
  let iv =
    Stats.Bootstrap.interval ~statistic:(fun a -> Array.fold_left max 0. a) g xs
  in
  check_bool "max statistic near 9" true (iv.hi = 9. && iv.lo >= 8.)

let bootstrap_errors () =
  let g = rng () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Bootstrap.interval: empty sample") (fun () ->
      ignore (Stats.Bootstrap.mean_interval g [||]));
  Alcotest.check_raises "bad confidence"
    (Invalid_argument "Bootstrap.interval: confidence must be in (0,1)")
    (fun () ->
      ignore (Stats.Bootstrap.mean_interval ~confidence:1.5 g [| 1. |]));
  Alcotest.check_raises "bad resamples"
    (Invalid_argument "Bootstrap.interval: resamples must be >= 1") (fun () ->
      ignore (Stats.Bootstrap.mean_interval ~resamples:0 g [| 1. |]))

(* --------------------------------------------------------------- *)
(* Regression *)

let regression_perfect_line () =
  let fit = Regression.fit [ (1., 3.); (2., 5.); (3., 7.) ] in
  check_float ~eps:1e-9 "alpha" 1. fit.alpha;
  check_float ~eps:1e-9 "beta" 2. fit.beta;
  check_float ~eps:1e-9 "r2" 1. fit.r2

let regression_fit_log () =
  let points = List.init 6 (fun i ->
      let x = float_of_int (i + 2) in
      (x, 1.5 +. (2.5 *. log x)))
  in
  let fit = Regression.fit_log points in
  check_float ~eps:1e-6 "alpha" 1.5 fit.alpha;
  check_float ~eps:1e-6 "beta" 2.5 fit.beta

let regression_predict () =
  let fit = Regression.fit [ (0., 1.); (1., 3.) ] in
  check_float ~eps:1e-9 "predict" 5. (Regression.predict fit 2.)

let regression_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.fit_arrays: need at least two points")
    (fun () -> ignore (Regression.fit [ (1., 1.) ]));
  Alcotest.check_raises "all x equal"
    (Invalid_argument "Regression.fit_arrays: all x equal") (fun () ->
      ignore (Regression.fit [ (1., 1.); (1., 2.) ]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Regression.fit_arrays: length mismatch") (fun () ->
      ignore (Regression.fit_arrays [| 1. |] [| 1.; 2. |]))

let regression_r2_bounds =
  qcase "R^2 in [0,1] on noisy data" ~print:string_of_int
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let g = rng ~seed () in
      let points =
        List.init 10 (fun i ->
            (float_of_int i, float_of_int i +. Prng.Rng.float g))
      in
      let fit = Regression.fit points in
      fit.r2 >= -1e-9 && fit.r2 <= 1. +. 1e-9)

(* --------------------------------------------------------------- *)
(* Bounds *)

let bounds_chernoff () =
  check_bool "smaller for larger mean" true
    (Bounds.chernoff_below ~mean:100. ~beta:0.5
     < Bounds.chernoff_below ~mean:10. ~beta:0.5);
  check_float ~eps:1e-12 "exact form" (exp (-12.5))
    (Bounds.chernoff_below ~mean:100. ~beta:0.5)

let bounds_harmonic () =
  check_float "H_1" 1. (Bounds.harmonic 1);
  check_float ~eps:1e-9 "H_4" (1. +. 0.5 +. (1. /. 3.) +. 0.25)
    (Bounds.harmonic 4);
  check_float "H_0" 0. (Bounds.harmonic 0)

let bounds_thm7 () =
  check_float ~eps:1e-9 "2 d ln n" (2. *. 3. *. log 100.)
    (Bounds.thm7_labels ~diameter:3 ~n:100)

let bounds_gnp_threshold () =
  check_float ~eps:1e-12 "ln n / n" (log 64. /. 64.)
    (Bounds.gnp_connectivity_threshold ~n:64)

let bounds_thm5 () =
  check_float ~eps:1e-9 "(a/n) ln n" (4. *. log 32.)
    (Bounds.thm5_lower_bound ~n:32 ~a:128)

let bounds_union () =
  check_float "clamped to 1" 1. (Bounds.union_bound [ 0.7; 0.7 ]);
  check_float ~eps:1e-12 "sums" 0.3 (Bounds.union_bound [ 0.1; 0.2 ]);
  check_float "empty" 0. (Bounds.union_bound [])

(* --------------------------------------------------------------- *)
(* Table *)

let table_fixture () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ Str "alpha"; Int 3 ];
  Table.add_row t [ Str "beta"; Float (2.5, 2) ];
  t

let table_roundtrip () =
  let t = table_fixture () in
  check_int "rows" 2 (List.length (Table.rows t));
  Alcotest.(check string) "title" "demo" (Table.title t);
  Alcotest.(check (list string)) "columns" [ "name"; "value" ]
    (Table.columns t)

let table_bad_row () =
  let t = table_fixture () in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: row has 1 cells, table has 2 columns")
    (fun () -> Table.add_row t [ Int 1 ])

let table_cells () =
  Alcotest.(check string) "int" "7" (Table.cell_to_string (Int 7));
  Alcotest.(check string) "float" "2.50" (Table.cell_to_string (Float (2.5, 2)));
  Alcotest.(check string) "pct" "12.5%" (Table.cell_to_string (Pct 0.125));
  Alcotest.(check string) "str" "x" (Table.cell_to_string (Str "x"))

let table_ascii () =
  let s = Table.to_ascii (table_fixture ()) in
  check_bool "has title" true (String.length s > 0);
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true
        (contains s needle))
    [ "demo"; "name"; "value"; "alpha"; "2.50" ]

let table_csv () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Table.add_row t [ Str "x,y" ];
  Alcotest.(check string) "escaped" "a\n\"x,y\"\n" (Table.to_csv t)

let table_markdown () =
  let s = Table.to_markdown (table_fixture ()) in
  check_bool "pipes" true (contains s "| alpha | 3 |")

let table_column_floats () =
  let t = table_fixture () in
  Alcotest.(check (list (float 1e-9))) "numeric column" [ 3.; 2.5 ]
    (Table.column_floats t "value");
  Alcotest.(check (list (float 1e-9))) "string column skipped" []
    (Table.column_floats t "name");
  Alcotest.check_raises "missing column" Not_found (fun () ->
      ignore (Table.column_floats t "nope"))

(* --------------------------------------------------------------- *)
(* Ascii_plot *)

let plot_renders () =
  let s =
    Stats.Ascii_plot.render ~title:"p" [ (0., 0.); (1., 1.); (2., 4.) ]
  in
  check_bool "grid drawn" true (contains s "*");
  check_bool "title" true (contains s "p")

let plot_degenerate () =
  Alcotest.(check string) "single point is title only" "t\n"
    (Stats.Ascii_plot.render ~title:"t" [ (1., 1.) ])

let plot_series_legend () =
  let s =
    Stats.Ascii_plot.render_series ~title:"multi"
      [ ("a", [ (0., 0.); (1., 1.) ]); ("b", [ (0., 1.); (1., 0.) ]) ]
  in
  check_bool "legend for a" true (contains s "* = a");
  check_bool "legend for b" true (contains s "+ = b")

let suites =
  [
    ( "stats.summary",
      [
        case "empty" summary_empty;
        case "single" summary_single;
        case "known values" summary_known;
        case "add_int" summary_add_int;
        case "merge" summary_merge;
        case "merge with empty" summary_merge_empty;
        case "stderr" summary_stderr;
        summary_matches_naive;
        summary_merge_fold_matches_direct;
      ] );
    ( "stats.quantile",
      [
        case "known" quantile_known;
        case "single" quantile_single;
        case "unsorted input" quantile_unsorted_input;
        case "errors" quantile_errors;
        case "iqr" quantile_iqr;
        case "many at once" quantile_many;
        quantile_monotone;
        case "merge_sorted known" merge_sorted_known;
        merge_sorted_matches_global_sort;
      ] );
    ( "stats.histogram",
      [
        case "counts" histogram_counts;
        case "edges" histogram_edges;
        case "mode" histogram_mode;
        case "render" histogram_render;
        case "invalid" histogram_invalid;
      ] );
    ( "stats.ci",
      [
        case "z values" ci_z_values;
        case "z invalid" ci_z_invalid;
        case "mean interval" ci_mean_interval;
        case "wilson known" ci_wilson_known;
        case "wilson extremes" ci_wilson_extremes;
        case "wilson invalid" ci_wilson_invalid;
        case "small helpers" ci_small_helpers;
        ci_wilson_narrows;
      ] );
    ( "stats.bootstrap",
      [
        case "mean contains truth" bootstrap_mean_contains_truth;
        case "median" bootstrap_median;
        case "degenerate sample" bootstrap_degenerate_sample;
        case "custom statistic" bootstrap_custom_statistic;
        case "errors" bootstrap_errors;
      ] );
    ( "stats.regression",
      [
        case "perfect line" regression_perfect_line;
        case "fit_log" regression_fit_log;
        case "predict" regression_predict;
        case "errors" regression_errors;
        regression_r2_bounds;
      ] );
    ( "stats.bounds",
      [
        case "chernoff" bounds_chernoff;
        case "harmonic" bounds_harmonic;
        case "thm7" bounds_thm7;
        case "gnp threshold" bounds_gnp_threshold;
        case "thm5" bounds_thm5;
        case "union bound" bounds_union;
      ] );
    ( "stats.table",
      [
        case "roundtrip" table_roundtrip;
        case "bad row" table_bad_row;
        case "cells" table_cells;
        case "ascii" table_ascii;
        case "csv escaping" table_csv;
        case "markdown" table_markdown;
        case "column_floats" table_column_floats;
      ] );
    ( "stats.plot",
      [
        case "renders" plot_renders;
        case "degenerate" plot_degenerate;
        case "series legend" plot_series_legend;
      ] );
  ]
