(* Tests for the Obs telemetry subsystem: metric semantics, histogram
   percentiles, span nesting + GC deltas, JSONL serialization, and the
   disabled fast path.

   Obs state is global and process-wide, so every test that enables
   tracing restores the disabled default and resets the registries on
   the way out. *)

open Helpers

let with_tracing f =
  Obs.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.set_enabled false;
      Obs.Span.clear_handlers ();
      Obs.Span.reset ();
      Obs.Metrics.reset ())
    f

(* --------------------------------------------------------------- *)
(* Metrics: counters and gauges *)

let counter_semantics () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.c" in
  check_int "fresh counter is zero" 0 (Obs.Metrics.count c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 40;
  check_int "incr/add accumulate" 42 (Obs.Metrics.count c);
  let c' = Obs.Metrics.counter "test.c" in
  Obs.Metrics.incr c';
  check_int "same name shares the instrument" 43 (Obs.Metrics.count c);
  Obs.Metrics.reset ();
  check_int "reset forgets" 0 (Obs.Metrics.count (Obs.Metrics.counter "test.c"))

let gauge_semantics () =
  Obs.Metrics.reset ();
  let g = Obs.Metrics.gauge "test.g" in
  check_float "fresh gauge is zero" 0. (Obs.Metrics.value g);
  Obs.Metrics.set g 3.5;
  Obs.Metrics.set g (-1.25);
  check_float "set overwrites" (-1.25) (Obs.Metrics.value g);
  check_float "same name shares the instrument" (-1.25)
    (Obs.Metrics.value (Obs.Metrics.gauge "test.g"))

(* --------------------------------------------------------------- *)
(* Histograms *)

let check_close ~rel msg expected actual =
  let err = Float.abs (actual -. expected) /. Float.abs expected in
  if err > rel then
    Alcotest.failf "%s: expected ~%g, got %g (rel err %.3f > %.3f)" msg expected
      actual err rel

let histogram_percentiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.h" in
  (* 1, 2, ..., 1000: every percentile is known exactly. *)
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  check_int "count" 1000 (Obs.Metrics.observations h);
  check_float "p0 is exact min" 1. (Obs.Metrics.percentile h 0.);
  check_float "p100 is exact max" 1000. (Obs.Metrics.percentile h 1.);
  (* 8 sub-buckets per octave: geometric-midpoint readout is within
     a factor 2^(1/16) ~ 4.4% of the true rank value. *)
  check_close ~rel:0.05 "p50" 500. (Obs.Metrics.percentile h 0.5);
  check_close ~rel:0.05 "p90" 900. (Obs.Metrics.percentile h 0.9);
  check_close ~rel:0.05 "p99" 990. (Obs.Metrics.percentile h 0.99)

let histogram_extremes () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.h2" in
  check_bool "empty percentile is nan" true
    (Float.is_nan (Obs.Metrics.percentile h 0.5));
  (* Non-positive and huge values must not escape the bucket range. *)
  Obs.Metrics.observe h 0.;
  Obs.Metrics.observe h (-5.);
  Obs.Metrics.observe h 1e30;
  check_int "count includes extremes" 3 (Obs.Metrics.observations h);
  check_float "min exact" (-5.) (Obs.Metrics.percentile h 0.);
  check_float "max exact" 1e30 (Obs.Metrics.percentile h 1.);
  let p50 = Obs.Metrics.percentile h 0.5 in
  check_bool "mid readout clamped to observed range" true
    (p50 >= -5. && p50 <= 1e30)

(* --------------------------------------------------------------- *)
(* Clock *)

let clock_monotonic () =
  let t0 = Obs.Clock.now () in
  let t1 = Obs.Clock.now () in
  check_bool "clock never goes backwards" true (Int64.compare t1 t0 >= 0);
  check_float ~eps:1e-12 "ns_to_ms" 1.5 (Obs.Clock.ns_to_ms 1_500_000L);
  check_float ~eps:1e-12 "ns_to_s" 2. (Obs.Clock.ns_to_s 2_000_000_000L)

(* --------------------------------------------------------------- *)
(* Spans *)

let span_nesting_and_gc () =
  with_tracing (fun () ->
      let records = ref [] in
      Obs.Span.on_record (fun r -> records := r :: !records);
      let result =
        Obs.Span.with_span "outer" (fun () ->
            Obs.Span.with_span "inner" (fun () ->
                (* Force some minor-heap allocation to show up in the delta. *)
                ignore (Sys.opaque_identity (Array.init 1000 (fun i -> [ i ])));
                17))
      in
      check_int "with_span returns f's value" 17 result;
      match List.rev !records with
      | [ inner; outer ] ->
        Alcotest.(check string) "inner path" "outer/inner" inner.Obs.Span.name;
        Alcotest.(check string) "outer path" "outer" outer.Obs.Span.name;
        check_int "inner depth" 1 inner.depth;
        check_int "outer depth" 0 outer.depth;
        check_bool "children close first" true
          (Int64.compare inner.dur_ns outer.dur_ns <= 0);
        check_bool "inner starts after outer" true
          (Int64.compare outer.start_ns inner.start_ns <= 0);
        check_bool "durations are non-negative" true
          (Int64.compare inner.dur_ns 0L >= 0);
        check_bool "allocation was observed" true (inner.minor_words > 0.);
        check_bool "GC deltas nest" true (outer.minor_words >= inner.minor_words)
      | records -> Alcotest.failf "expected 2 records, got %d" (List.length records))

let span_survives_exceptions () =
  with_tracing (fun () ->
      (try Obs.Span.with_span "boom" (fun () -> failwith "boom") with
      | Failure _ -> ());
      match Obs.Span.totals () with
      | [ ("boom", t) ] ->
        check_int "the failed span still recorded" 1 t.Obs.Span.count;
        (* The nesting stack must be clean: a sibling span is a root again. *)
        Obs.Span.with_span "after" (fun () -> ());
        check_bool "stack unwound" true
          (List.mem_assoc "after" (Obs.Span.totals ()))
      | l -> Alcotest.failf "expected [boom], got %d entries" (List.length l))

let span_totals_aggregate () =
  with_tracing (fun () ->
      for _ = 1 to 5 do
        Obs.Span.with_span "work" (fun () -> ())
      done;
      match List.assoc_opt "work" (Obs.Span.totals ()) with
      | Some t ->
        check_int "count aggregates" 5 t.Obs.Span.count;
        check_bool "total duration non-negative" true
          (Int64.compare t.total_ns 0L >= 0)
      | None -> Alcotest.fail "missing aggregate for 'work'")

let disabled_path_records_nothing () =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Control.set_enabled false;
  let fired = ref false in
  Obs.Span.on_record (fun _ -> fired := true);
  let r = Obs.Span.with_span "ghost" (fun () -> 3) in
  Obs.Span.clear_handlers ();
  check_int "disabled with_span is just f ()" 3 r;
  check_bool "no handler fired" false !fired;
  check_int "no aggregates" 0 (List.length (Obs.Span.totals ()))

let runner_disabled_records_nothing () =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Control.set_enabled false;
  let summary =
    Sim.Runner.summarize (rng ()) ~trials:10 (fun trial_rng ->
        Prng.Rng.float trial_rng)
  in
  check_int "trials ran" 10 (Stats.Summary.count summary);
  check_int "no spans recorded" 0 (List.length (Obs.Span.totals ()));
  check_int "no trial counter" 0
    (Obs.Metrics.count (Obs.Metrics.counter "sim.trials"));
  Obs.Metrics.reset ()

let runner_instrumentation_matches_results () =
  (* Tracing must not perturb the RNG stream: same trial values with
     telemetry on and off. *)
  let collect () =
    Sim.Runner.collect (Prng.Rng.create 7) ~trials:8 (fun trial_rng ->
        Prng.Rng.bits64 trial_rng)
  in
  let plain = collect () in
  let traced = with_tracing collect in
  Alcotest.(check (list int64)) "identical trial randomness" plain traced

let runner_traced_spans_and_counter () =
  with_tracing (fun () ->
      ignore (Sim.Runner.count (rng ()) ~trials:6 (fun _ -> true));
      check_int "sim.trials counted" 6
        (Obs.Metrics.count (Obs.Metrics.counter "sim.trials"));
      match List.assoc_opt "trial" (Obs.Span.totals ()) with
      | Some t -> check_int "one span per trial" 6 t.Obs.Span.count
      | None -> Alcotest.fail "missing 'trial' aggregate")

(* --------------------------------------------------------------- *)
(* JSONL sink *)

let json_escaping () =
  Alcotest.(check string) "plain passes through" "abc" (Obs.Sink.json_escape "abc");
  Alcotest.(check string) "quote" {|a\"b|} (Obs.Sink.json_escape {|a"b|});
  Alcotest.(check string) "backslash" {|a\\b|} (Obs.Sink.json_escape {|a\b|});
  Alcotest.(check string) "newline+tab" {|a\nb\tc|}
    (Obs.Sink.json_escape "a\nb\tc");
  Alcotest.(check string) "control char" {|\u0001|}
    (Obs.Sink.json_escape "\x01")

let record_serialization () =
  let r =
    {
      Obs.Span.name = "e1/trial";
      depth = 1;
      start_ns = 123L;
      dur_ns = 456L;
      minor_words = 7890.;
      major_words = 0.;
    }
  in
  Alcotest.(check string) "canonical record"
    {|{"name":"e1/trial","depth":1,"start_ns":123,"dur_ns":456,"minor_words":7890,"major_words":0}|}
    (Obs.Sink.record_to_json r)

let jsonl_sink_writes_lines () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  with_tracing (fun () ->
      let sink = Obs.Sink.open_jsonl path in
      Obs.Sink.attach sink;
      Obs.Span.with_span "a" (fun () -> Obs.Span.with_span "b" (fun () -> ()));
      Obs.Sink.close sink);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "one line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      check_bool "line is an object" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      check_bool "has name field" true (contains line {|"name":|});
      check_bool "has dur_ns field" true (contains line {|"dur_ns":|}))
    lines;
  check_bool "inner span first (closes first)" true
    (contains (List.nth lines 0) {|"name":"a/b"|})

(* --------------------------------------------------------------- *)
(* Export *)

let export_tables () =
  with_tracing (fun () ->
      Obs.Span.with_span "phase" (fun () -> ());
      Obs.Metrics.incr (Obs.Metrics.counter "c");
      let h = Obs.Metrics.histogram "h" in
      Obs.Metrics.observe h 10.;
      let spans = Stats.Table.to_ascii (Obs.Export.span_table ()) in
      check_bool "span row present" true (contains spans "phase");
      check_bool "span columns" true (contains spans "total ms");
      let metrics = Stats.Table.to_ascii (Obs.Export.metrics_table ()) in
      check_bool "counter row present" true (contains metrics "counter");
      check_bool "histogram row present" true (contains metrics "histogram"))

(* --------------------------------------------------------------- *)
(* Report.ensure_dir (satellite fix: nested paths) *)

let ensure_dir_recursive () =
  let base = Filename.temp_file "obs_dir" "" in
  Sys.remove base;
  let nested = Filename.concat (Filename.concat base "csv") "run1" in
  Sim.Report.ensure_dir nested;
  check_bool "nested directory exists" true
    (Sys.file_exists nested && Sys.is_directory nested);
  (* Idempotent on an existing path. *)
  Sim.Report.ensure_dir nested;
  check_bool "still exists" true (Sys.is_directory nested);
  Sys.rmdir nested;
  Sys.rmdir (Filename.concat base "csv");
  Sys.rmdir base

let suites =
  [
    ( "obs.metrics",
      [
        case "counter semantics" counter_semantics;
        case "gauge semantics" gauge_semantics;
        case "histogram percentiles on known data" histogram_percentiles;
        case "histogram extremes and empty" histogram_extremes;
      ] );
    ( "obs.span",
      [
        case "clock is monotonic" clock_monotonic;
        case "nesting, paths and GC deltas" span_nesting_and_gc;
        case "exception safety" span_survives_exceptions;
        case "aggregation" span_totals_aggregate;
        case "disabled path records nothing" disabled_path_records_nothing;
        case "disabled runner records nothing" runner_disabled_records_nothing;
        case "tracing does not perturb trials"
          runner_instrumentation_matches_results;
        case "traced runner spans + counter" runner_traced_spans_and_counter;
      ] );
    ( "obs.sink",
      [
        case "JSON string escaping" json_escaping;
        case "record serialization" record_serialization;
        case "JSONL file output" jsonl_sink_writes_lines;
        case "export tables" export_tables;
      ] );
    ("report.dirs", [ case "ensure_dir is recursive" ensure_dir_recursive ]);
  ]
