(* Tests for the Obs telemetry subsystem: metric semantics, histogram
   percentiles, span nesting + GC deltas, JSONL serialization, and the
   disabled fast path.

   Obs state is global and process-wide, so every test that enables
   tracing restores the disabled default and resets the registries on
   the way out. *)

open Helpers

let with_tracing f =
  Obs.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.set_enabled false;
      Obs.Span.clear_handlers ();
      Obs.Span.reset ();
      Obs.Metrics.reset ())
    f

(* --------------------------------------------------------------- *)
(* Metrics: counters and gauges *)

let counter_semantics () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test.c" in
  check_int "fresh counter is zero" 0 (Obs.Metrics.count c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 40;
  check_int "incr/add accumulate" 42 (Obs.Metrics.count c);
  let c' = Obs.Metrics.counter "test.c" in
  Obs.Metrics.incr c';
  check_int "same name shares the instrument" 43 (Obs.Metrics.count c);
  Obs.Metrics.reset ();
  check_int "reset forgets" 0 (Obs.Metrics.count (Obs.Metrics.counter "test.c"))

let gauge_semantics () =
  Obs.Metrics.reset ();
  let g = Obs.Metrics.gauge "test.g" in
  check_float "fresh gauge is zero" 0. (Obs.Metrics.value g);
  Obs.Metrics.set g 3.5;
  Obs.Metrics.set g (-1.25);
  check_float "set overwrites" (-1.25) (Obs.Metrics.value g);
  check_float "same name shares the instrument" (-1.25)
    (Obs.Metrics.value (Obs.Metrics.gauge "test.g"))

(* --------------------------------------------------------------- *)
(* Histograms *)

let check_close ~rel msg expected actual =
  let err = Float.abs (actual -. expected) /. Float.abs expected in
  if err > rel then
    Alcotest.failf "%s: expected ~%g, got %g (rel err %.3f > %.3f)" msg expected
      actual err rel

let histogram_percentiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.h" in
  (* 1, 2, ..., 1000: every percentile is known exactly. *)
  for i = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  check_int "count" 1000 (Obs.Metrics.observations h);
  check_float "p0 is exact min" 1. (Obs.Metrics.percentile h 0.);
  check_float "p100 is exact max" 1000. (Obs.Metrics.percentile h 1.);
  (* 8 sub-buckets per octave: geometric-midpoint readout is within
     a factor 2^(1/16) ~ 4.4% of the true rank value. *)
  check_close ~rel:0.05 "p50" 500. (Obs.Metrics.percentile h 0.5);
  check_close ~rel:0.05 "p90" 900. (Obs.Metrics.percentile h 0.9);
  check_close ~rel:0.05 "p99" 990. (Obs.Metrics.percentile h 0.99)

let histogram_extremes () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.h2" in
  check_bool "empty percentile is nan" true
    (Float.is_nan (Obs.Metrics.percentile h 0.5));
  (* Non-positive and huge values must not escape the bucket range. *)
  Obs.Metrics.observe h 0.;
  Obs.Metrics.observe h (-5.);
  Obs.Metrics.observe h 1e30;
  check_int "count includes extremes" 3 (Obs.Metrics.observations h);
  check_float "min exact" (-5.) (Obs.Metrics.percentile h 0.);
  check_float "max exact" 1e30 (Obs.Metrics.percentile h 1.);
  let p50 = Obs.Metrics.percentile h 0.5 in
  check_bool "mid readout clamped to observed range" true
    (p50 >= -5. && p50 <= 1e30)

(* --------------------------------------------------------------- *)
(* Clock *)

let clock_monotonic () =
  let t0 = Obs.Clock.now () in
  let t1 = Obs.Clock.now () in
  check_bool "clock never goes backwards" true (Int64.compare t1 t0 >= 0);
  check_float ~eps:1e-12 "ns_to_ms" 1.5 (Obs.Clock.ns_to_ms 1_500_000L);
  check_float ~eps:1e-12 "ns_to_s" 2. (Obs.Clock.ns_to_s 2_000_000_000L)

(* --------------------------------------------------------------- *)
(* Spans *)

let span_nesting_and_gc () =
  with_tracing (fun () ->
      let records = ref [] in
      Obs.Span.on_record (fun r -> records := r :: !records);
      let result =
        Obs.Span.with_span "outer" (fun () ->
            Obs.Span.with_span "inner" (fun () ->
                (* Force some minor-heap allocation to show up in the delta. *)
                ignore (Sys.opaque_identity (Array.init 1000 (fun i -> [ i ])));
                17))
      in
      check_int "with_span returns f's value" 17 result;
      match List.rev !records with
      | [ inner; outer ] ->
        Alcotest.(check string) "inner path" "outer/inner" inner.Obs.Span.name;
        Alcotest.(check string) "outer path" "outer" outer.Obs.Span.name;
        check_int "inner depth" 1 inner.depth;
        check_int "outer depth" 0 outer.depth;
        check_bool "children close first" true
          (Int64.compare inner.dur_ns outer.dur_ns <= 0);
        check_bool "inner starts after outer" true
          (Int64.compare outer.start_ns inner.start_ns <= 0);
        check_bool "durations are non-negative" true
          (Int64.compare inner.dur_ns 0L >= 0);
        check_bool "allocation was observed" true (inner.minor_words > 0.);
        check_bool "GC deltas nest" true (outer.minor_words >= inner.minor_words)
      | records -> Alcotest.failf "expected 2 records, got %d" (List.length records))

let span_survives_exceptions () =
  with_tracing (fun () ->
      (try Obs.Span.with_span "boom" (fun () -> failwith "boom") with
      | Failure _ -> ());
      match Obs.Span.totals () with
      | [ ("boom", t) ] ->
        check_int "the failed span still recorded" 1 t.Obs.Span.count;
        (* The nesting stack must be clean: a sibling span is a root again. *)
        Obs.Span.with_span "after" (fun () -> ());
        check_bool "stack unwound" true
          (List.mem_assoc "after" (Obs.Span.totals ()))
      | l -> Alcotest.failf "expected [boom], got %d entries" (List.length l))

let span_totals_aggregate () =
  with_tracing (fun () ->
      for _ = 1 to 5 do
        Obs.Span.with_span "work" (fun () -> ())
      done;
      match List.assoc_opt "work" (Obs.Span.totals ()) with
      | Some t ->
        check_int "count aggregates" 5 t.Obs.Span.count;
        check_bool "total duration non-negative" true
          (Int64.compare t.total_ns 0L >= 0)
      | None -> Alcotest.fail "missing aggregate for 'work'")

let disabled_path_records_nothing () =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Control.set_enabled false;
  let fired = ref false in
  Obs.Span.on_record (fun _ -> fired := true);
  let r = Obs.Span.with_span "ghost" (fun () -> 3) in
  Obs.Span.clear_handlers ();
  check_int "disabled with_span is just f ()" 3 r;
  check_bool "no handler fired" false !fired;
  check_int "no aggregates" 0 (List.length (Obs.Span.totals ()))

let runner_disabled_records_nothing () =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Control.set_enabled false;
  let summary =
    Sim.Runner.summarize (rng ()) ~trials:10 (fun trial_rng ->
        Prng.Rng.float trial_rng)
  in
  check_int "trials ran" 10 (Stats.Summary.count summary);
  check_int "no spans recorded" 0 (List.length (Obs.Span.totals ()));
  check_int "no trial counter" 0
    (Obs.Metrics.count (Obs.Metrics.counter "sim.trials"));
  Obs.Metrics.reset ()

let runner_instrumentation_matches_results () =
  (* Tracing must not perturb the RNG stream: same trial values with
     telemetry on and off. *)
  let collect () =
    Sim.Runner.collect (Prng.Rng.create 7) ~trials:8 (fun trial_rng ->
        Prng.Rng.bits64 trial_rng)
  in
  let plain = collect () in
  let traced = with_tracing collect in
  Alcotest.(check (list int64)) "identical trial randomness" plain traced

let runner_traced_spans_and_counter () =
  with_tracing (fun () ->
      ignore (Sim.Runner.count (rng ()) ~trials:6 (fun _ -> true));
      check_int "sim.trials counted" 6
        (Obs.Metrics.count (Obs.Metrics.counter "sim.trials"));
      match List.assoc_opt "trial" (Obs.Span.totals ()) with
      | Some t -> check_int "one span per trial" 6 t.Obs.Span.count
      | None -> Alcotest.fail "missing 'trial' aggregate")

(* --------------------------------------------------------------- *)
(* JSONL sink *)

let json_escaping () =
  Alcotest.(check string) "plain passes through" "abc" (Obs.Sink.json_escape "abc");
  Alcotest.(check string) "quote" {|a\"b|} (Obs.Sink.json_escape {|a"b|});
  Alcotest.(check string) "backslash" {|a\\b|} (Obs.Sink.json_escape {|a\b|});
  Alcotest.(check string) "newline+tab" {|a\nb\tc|}
    (Obs.Sink.json_escape "a\nb\tc");
  Alcotest.(check string) "control char" {|\u0001|}
    (Obs.Sink.json_escape "\x01")

let record_serialization () =
  let r =
    {
      Obs.Span.name = "e1/trial";
      domain = 3;
      depth = 1;
      start_ns = 123L;
      dur_ns = 456L;
      minor_words = 7890.;
      major_words = 0.;
    }
  in
  Alcotest.(check string) "canonical record (schema v2)"
    {|{"name":"e1/trial","domain":3,"depth":1,"start_ns":123,"dur_ns":456,"minor_words":7890,"major_words":0}|}
    (Obs.Sink.record_to_json r)

let jsonl_sink_writes_lines () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  with_tracing (fun () ->
      let sink = Obs.Sink.open_jsonl path in
      Obs.Sink.attach sink;
      Obs.Span.with_span "a" (fun () -> Obs.Span.with_span "b" (fun () -> ()));
      Obs.Sink.close sink);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "one line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      check_bool "line is an object" true
        (String.length line > 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      check_bool "has name field" true (contains line {|"name":|});
      check_bool "has dur_ns field" true (contains line {|"dur_ns":|}))
    lines;
  check_bool "inner span first (closes first)" true
    (contains (List.nth lines 0) {|"name":"a/b"|})

(* --------------------------------------------------------------- *)
(* Export *)

let export_tables () =
  with_tracing (fun () ->
      Obs.Span.with_span "phase" (fun () -> ());
      Obs.Metrics.incr (Obs.Metrics.counter "c");
      let h = Obs.Metrics.histogram "h" in
      Obs.Metrics.observe h 10.;
      let spans = Stats.Table.to_ascii (Obs.Export.span_table ()) in
      check_bool "span row present" true (contains spans "phase");
      check_bool "span columns" true (contains spans "total ms");
      let metrics = Stats.Table.to_ascii (Obs.Export.metrics_table ()) in
      check_bool "counter row present" true (contains metrics "counter");
      check_bool "histogram row present" true (contains metrics "histogram"))

(* --------------------------------------------------------------- *)
(* Reader: strict parsing, the inverse of Sink.record_to_json *)

let mk ?(name = "a") ?(domain = 0) ?(depth = 0) ?(start_ns = 0L) ?(dur_ns = 0L)
    ?(minor = 0.) ?(major = 0.) () =
  {
    Obs.Span.name;
    domain;
    depth;
    start_ns;
    dur_ns;
    minor_words = minor;
    major_words = major;
  }

(* Arbitrary records whose serialized form is reachable from
   [record_to_json]: names over the full byte range (escaping paths
   included), word counts as integral floats (the serializer prints
   them %.0f). *)
let gen_record =
  QCheck2.Gen.(
    let* name = string_size ~gen:(char_range '\x00' '\xff') (int_range 0 24) in
    let* domain = int_range (-1) 8 in
    let* depth = int_range 0 12 in
    let* start = int in
    let* dur = nat in
    let* minor = nat in
    let* major = nat in
    return
      (mk ~name ~domain ~depth ~start_ns:(Int64.of_int start)
         ~dur_ns:(Int64.of_int dur)
         ~minor:(float_of_int minor)
         ~major:(float_of_int major) ()))

let reader_roundtrip =
  qcase ~count:500 "parse ∘ record_to_json = id" gen_record
    ~print:Obs.Sink.record_to_json (fun r ->
      match Obs.Reader.parse (Obs.Sink.record_to_json r) with
      | Ok r' -> r' = r
      | Error e -> QCheck2.Test.fail_reportf "rejected own output: %s" e)

let v2_line =
  {|{"name":"e1/trial","domain":2,"depth":1,"start_ns":5,"dur_ns":7,"minor_words":11,"major_words":13}|}

let reader_accepts_v1 () =
  let v1 =
    {|{"name":"e1/trial","depth":1,"start_ns":5,"dur_ns":7,"minor_words":11,"major_words":13}|}
  in
  match Obs.Reader.parse v1 with
  | Ok r ->
    check_int "v1 domain reads back as -1" (-1) r.Obs.Span.domain;
    Alcotest.(check string) "name" "e1/trial" r.name;
    check_int "depth" 1 r.depth
  | Error e -> Alcotest.failf "v1 line rejected: %s" e

let reader_rejects_garbage () =
  let reject why s =
    match Obs.Reader.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted: %S" why s
  in
  reject "empty line" "";
  reject "not JSON" "sweep 42";
  reject "truncated" (String.sub v2_line 0 (String.length v2_line - 10));
  reject "trailing garbage" (v2_line ^ "x");
  reject "second object on the line" (v2_line ^ v2_line);
  reject "unknown field"
    {|{"name":"a","domain":0,"depth":0,"start_ns":0,"dur_ns":0,"minor_words":0,"major_words":0,"extra":1}|};
  reject "duplicate field"
    {|{"name":"a","name":"b","depth":0,"start_ns":0,"dur_ns":0,"minor_words":0,"major_words":0}|};
  reject "missing field" {|{"name":"a","depth":0}|};
  reject "wrong type"
    {|{"name":7,"domain":0,"depth":0,"start_ns":0,"dur_ns":0,"minor_words":0,"major_words":0}|};
  reject "bad escape"
    {|{"name":"a\qb","domain":0,"depth":0,"start_ns":0,"dur_ns":0,"minor_words":0,"major_words":0}|};
  (* \uXXXX escapes above 0xFF cannot come from record_to_json (names
     are raw bytes); the parser refuses rather than lossily decode. *)
  reject "escape beyond one byte"
    "{\"name\":\"\\u0100\",\"domain\":0,\"depth\":0,\"start_ns\":0,\"dur_ns\":0,\"minor_words\":0,\"major_words\":0}";
  (* Parse must also survive (and reject) every prefix of a valid line:
     a crash mid-write truncates anywhere. *)
  for i = 1 to String.length v2_line - 1 do
    reject "prefix" (String.sub v2_line 0 i)
  done

let reader_file_errors () =
  let path = Filename.temp_file "obs_reader" ".jsonl" in
  let oc = open_out path in
  output_string oc (v2_line ^ "\n");
  output_string oc (v2_line ^ "\n");
  output_string oc "garbled\n";
  close_out oc;
  (match Obs.Reader.read_file path with
  | Error { line; _ } -> check_int "error names the bad line" 3 line
  | Ok _ -> Alcotest.fail "garbled file accepted");
  Sys.remove path;
  match Obs.Reader.read_file path with
  | Error { line; _ } -> check_int "unopenable file is line 0" 0 line
  | Ok _ -> Alcotest.fail "read a removed file"

(* --------------------------------------------------------------- *)
(* Analysis: totals, folded stacks, domain utilization, diff *)

let analysis_totals_and_folded () =
  let records =
    [
      mk ~name:"a" ~dur_ns:100L ~minor:10. ();
      mk ~name:"a" ~dur_ns:50L ~minor:5. ();
      mk ~name:"a/b" ~depth:1 ~dur_ns:30L ();
    ]
  in
  (match Obs.Analysis.totals records with
  | [ ("a", ta); ("a/b", tb) ] ->
    check_int "a count" 2 ta.Obs.Span.count;
    Alcotest.(check int64) "a total" 150L ta.total_ns;
    check_float "a minor words" 15. ta.minor_words;
    check_int "a/b count" 1 tb.Obs.Span.count
  | l -> Alcotest.failf "expected 2 paths, got %d" (List.length l));
  (match Obs.Analysis.folded records with
  | [ ("a", self_a); ("a;b", self_b) ] ->
    Alcotest.(check int64) "parent self = total - children" 120L self_a;
    Alcotest.(check int64) "leaf self = its total" 30L self_b
  | l -> Alcotest.failf "expected 2 stacks, got %d" (List.length l));
  (* Children running concurrently on other domains can out-total the
     parent's wall time; self clamps at zero rather than going negative. *)
  let over =
    [ mk ~name:"a" ~dur_ns:100L (); mk ~name:"a/b" ~depth:1 ~dur_ns:250L () ]
  in
  match Obs.Analysis.folded over with
  | [ ("a", self_a); ("a;b", _) ] ->
    Alcotest.(check int64) "oversubscribed self clamps to 0" 0L self_a
  | l -> Alcotest.failf "expected 2 stacks, got %d" (List.length l)

let analysis_domain_stats () =
  check_bool "empty trace has no stats" true
    (Obs.Analysis.domain_stats [] = None);
  (* Domain 0 busy on [0,60) ∪ [40,100) = [0,100); domain 1 on [50,150).
     Wall [0,150): exactly-one-busy on [0,50) ∪ [100,150), both on
     [50,100). *)
  let records =
    [
      mk ~domain:0 ~start_ns:0L ~dur_ns:60L ();
      mk ~domain:0 ~start_ns:40L ~dur_ns:60L ();
      mk ~domain:1 ~start_ns:50L ~dur_ns:100L ();
    ]
  in
  match Obs.Analysis.domain_stats records with
  | None -> Alcotest.fail "no stats"
  | Some s ->
    Alcotest.(check int64) "wall" 150L s.wall_ns;
    (match s.rows with
    | [ d0; d1 ] ->
      check_int "domain ids sorted" 0 d0.Obs.Analysis.domain;
      check_int "span counts" 2 d0.spans;
      Alcotest.(check int64) "overlap within a domain unions" 100L d0.busy_ns;
      Alcotest.(check int64) "second domain busy" 100L d1.busy_ns
    | l -> Alcotest.failf "expected 2 domains, got %d" (List.length l));
    Alcotest.(check (list (pair int int64)))
      "concurrency profile" [ (1, 100L); (2, 50L) ] s.concurrency

let analysis_diff () =
  let t dur =
    List.assoc "x" (Obs.Analysis.totals [ mk ~name:"x" ~dur_ns:dur () ])
  in
  let old_t = [ ("a", t 100L); ("b", t 10L) ] in
  let new_t = [ ("a", t 150L); ("c", t 20L) ] in
  (match Obs.Analysis.diff old_t new_t with
  | [ ra; rb; rc ] ->
    Alcotest.(check string) "union sorted" "a" ra.Obs.Analysis.path;
    (match ra.wall_pct with
    | Some pct -> check_float ~eps:1e-9 "+50% regression" 50. pct
    | None -> Alcotest.fail "comparable path has no wall pct");
    check_bool "old-only path incomparable" true (rb.wall_pct = None);
    check_bool "new-only path incomparable" true (rc.wall_pct = None)
  | l -> Alcotest.failf "expected 3 rows, got %d" (List.length l));
  check_float ~eps:1e-9 "worst picks the regression" 50.
    (Obs.Analysis.worst_wall_pct (Obs.Analysis.diff old_t new_t));
  check_bool "no comparable rows -> neg_infinity" true
    (Obs.Analysis.worst_wall_pct (Obs.Analysis.diff old_t [ ("c", t 20L) ])
    = Float.neg_infinity)

(* --------------------------------------------------------------- *)
(* Sink hardening: close semantics *)

let sink_emit_after_close_drops () =
  let path = Filename.temp_file "obs_closed" ".jsonl" in
  with_tracing (fun () ->
      let sink = Obs.Sink.open_jsonl path in
      Obs.Sink.attach sink;
      Obs.Span.with_span "kept" (fun () -> ());
      Obs.Sink.close sink;
      Obs.Sink.close sink (* idempotent *);
      let dropped = Obs.Metrics.counter "obs.sink_dropped" in
      let before = Obs.Metrics.count dropped in
      Obs.Span.with_span "ghost" (fun () -> ());
      check_int "post-close span counted as dropped" (before + 1)
        (Obs.Metrics.count dropped));
  (match Obs.Reader.read_file path with
  | Ok [ r ] -> Alcotest.(check string) "only the pre-close span" "kept" r.name
  | Ok l -> Alcotest.failf "expected 1 record, got %d" (List.length l)
  | Error e -> Alcotest.failf "line %d: %s" e.line e.message);
  Sys.remove path

let sink_concurrent_emitters_during_close () =
  let path = Filename.temp_file "obs_race" ".jsonl" in
  with_tracing (fun () ->
      let sink = Obs.Sink.open_jsonl path in
      Obs.Sink.attach sink;
      let emitters =
        List.init 3 (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to 200 do
                  Obs.Span.with_span
                    (Printf.sprintf "w%d/s%d" d (i mod 4))
                    (fun () -> ())
                done))
      in
      (* Close while the emitters race: whatever lands after the cut
         must be dropped whole, never torn. *)
      Obs.Span.with_span "main" (fun () -> ());
      Obs.Sink.close sink;
      List.iter Domain.join emitters);
  (match Obs.Reader.read_file path with
  | Ok records ->
    check_bool "published file is non-empty" true (records <> []);
    List.iter
      (fun (r : Obs.Span.record) ->
        check_bool "every line carries a domain id" true (r.domain >= 0))
      records
  | Error e -> Alcotest.failf "torn line %d: %s" e.line e.message);
  Sys.remove path

(* --------------------------------------------------------------- *)
(* Export: empty histograms render as dashes, not nan *)

let export_empty_histogram_dash () =
  with_tracing (fun () ->
      ignore (Obs.Metrics.histogram "empty.h" : Obs.Metrics.histogram);
      let table = Stats.Table.to_ascii (Obs.Export.metrics_table ()) in
      check_bool "declared histogram appears" true (contains table "empty.h");
      check_bool "no nan anywhere" false (contains table "nan"))

(* --------------------------------------------------------------- *)
(* Deep probes: populated when enabled, untouched when disabled *)

let kernel_probe_counters () =
  with_tracing (fun () ->
      let net = fixture () in
      ignore (Temporal.Foremost.run net 0);
      let count name = Obs.Metrics.count (Obs.Metrics.counter name) in
      check_bool "sweep counted" true (count "kernel.sweeps" >= 1);
      check_bool "edges scanned" true (count "kernel.edges_scanned" >= 1))

let kernel_probes_off_when_disabled () =
  Obs.Metrics.reset ();
  Obs.Control.set_enabled false;
  let net = fixture () in
  ignore (Temporal.Foremost.run net 0);
  check_int "no sweeps recorded" 0
    (Obs.Metrics.count (Obs.Metrics.counter "kernel.sweeps"));
  check_int "no edges recorded" 0
    (Obs.Metrics.count (Obs.Metrics.counter "kernel.edges_scanned"));
  Obs.Metrics.reset ()

let workspace_growth_probe () =
  with_tracing (fun () ->
      (* A fresh domain starts with an empty workspace, so the first
         sweep must grow it — regardless of what other tests did to
         this domain's scratch. *)
      let grew =
        Domain.spawn (fun () ->
            let net = fixture () in
            ignore (Temporal.Foremost.arrivals_borrowed net 0);
            Obs.Metrics.count (Obs.Metrics.counter "kernel.workspace_growths"))
        |> Domain.join
      in
      check_bool "fresh domain grew its workspace" true (grew >= 1))

let pool_probes () =
  with_tracing (fun () ->
      let pool = Exec.Pool.create ~jobs:2 in
      Fun.protect
        ~finally:(fun () -> Exec.Pool.shutdown pool)
        (fun () ->
          let a = Exec.Pool.map_range pool ~lo:0 ~hi:64 (fun i -> i * i) in
          check_int "work done" 64 (Array.length a));
      check_bool "task latency observed" true
        (Obs.Metrics.observations (Obs.Metrics.histogram "pool.task_ms") >= 1);
      check_bool "queue depth gauge drained to zero" true
        (Obs.Metrics.value (Obs.Metrics.gauge "pool.queue_depth") = 0.))

let supervise_retry_histogram () =
  with_tracing (fun () ->
      Sim.Supervise.configure
        { Sim.Supervise.default with max_retries = 2 };
      Fun.protect
        ~finally:(fun () -> Sim.Supervise.configure Sim.Supervise.default)
        (fun () ->
          let attempts = ref 0 in
          match
            Sim.Supervise.run_trial ~trial:0 (rng ()) (fun _ ->
                incr attempts;
                if !attempts < 2 then failwith "flaky" else 42)
          with
          | Ok v ->
            check_int "second attempt succeeded" 42 v;
            check_int "exactly the retry attempt is timed" 1
              (Obs.Metrics.observations
                 (Obs.Metrics.histogram "supervise.retry_ms"))
          | Error f -> Alcotest.failf "trial failed: %s" f.message))

(* --------------------------------------------------------------- *)
(* Report.ensure_dir (satellite fix: nested paths) *)

let ensure_dir_recursive () =
  let base = Filename.temp_file "obs_dir" "" in
  Sys.remove base;
  let nested = Filename.concat (Filename.concat base "csv") "run1" in
  Sim.Report.ensure_dir nested;
  check_bool "nested directory exists" true
    (Sys.file_exists nested && Sys.is_directory nested);
  (* Idempotent on an existing path. *)
  Sim.Report.ensure_dir nested;
  check_bool "still exists" true (Sys.is_directory nested);
  Sys.rmdir nested;
  Sys.rmdir (Filename.concat base "csv");
  Sys.rmdir base

let suites =
  [
    ( "obs.metrics",
      [
        case "counter semantics" counter_semantics;
        case "gauge semantics" gauge_semantics;
        case "histogram percentiles on known data" histogram_percentiles;
        case "histogram extremes and empty" histogram_extremes;
      ] );
    ( "obs.span",
      [
        case "clock is monotonic" clock_monotonic;
        case "nesting, paths and GC deltas" span_nesting_and_gc;
        case "exception safety" span_survives_exceptions;
        case "aggregation" span_totals_aggregate;
        case "disabled path records nothing" disabled_path_records_nothing;
        case "disabled runner records nothing" runner_disabled_records_nothing;
        case "tracing does not perturb trials"
          runner_instrumentation_matches_results;
        case "traced runner spans + counter" runner_traced_spans_and_counter;
      ] );
    ( "obs.sink",
      [
        case "JSON string escaping" json_escaping;
        case "record serialization" record_serialization;
        case "JSONL file output" jsonl_sink_writes_lines;
        case "export tables" export_tables;
        case "emit after close drops, close idempotent"
          sink_emit_after_close_drops;
        case "concurrent emitters racing close"
          sink_concurrent_emitters_during_close;
        case "empty histogram renders dashes" export_empty_histogram_dash;
      ] );
    ( "obs.reader",
      [
        reader_roundtrip;
        case "schema v1 accepted, domain = -1" reader_accepts_v1;
        case "garbled lines rejected" reader_rejects_garbage;
        case "file errors carry line numbers" reader_file_errors;
      ] );
    ( "obs.analysis",
      [
        case "totals and folded stacks" analysis_totals_and_folded;
        case "per-domain utilization + concurrency" analysis_domain_stats;
        case "diff and worst regression" analysis_diff;
      ] );
    ( "obs.probes",
      [
        case "kernel counters when enabled" kernel_probe_counters;
        case "kernel counters silent when disabled"
          kernel_probes_off_when_disabled;
        case "fresh-domain workspace growth" workspace_growth_probe;
        case "pool latency histogram + queue gauge" pool_probes;
        case "supervise retry latency" supervise_retry_histogram;
      ] );
    ("report.dirs", [ case "ensure_dir is recursive" ensure_dir_recursive ]);
  ]
