(* Tests for lib/exec: the domain pool and its determinism contract. *)

open Helpers
module Pool = Exec.Pool
module Config = Exec.Config

(* Each case builds its own pool so suites can't interfere; jobs = 4
   exercises real worker domains even on a single-core host. *)
let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let map_range_identity () =
  with_pool 4 (fun pool ->
      let result = Pool.map_range pool ~lo:0 ~hi:100 (fun i -> i * i) in
      Alcotest.(check (array int))
        "slot i holds f i"
        (Array.init 100 (fun i -> i * i))
        result)

let map_range_jobs_agree () =
  let expected = Array.init 257 (fun i -> (3 * i) + 1) in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d" jobs)
            expected
            (Pool.map_range pool ~lo:0 ~hi:257 (fun i -> (3 * i) + 1))))
    [ 1; 2; 4 ]

let map_range_offset_range () =
  with_pool 3 (fun pool ->
      Alcotest.(check (array int))
        "lo..hi-1" [| 5; 6; 7 |]
        (Pool.map_range pool ~lo:5 ~hi:8 Fun.id))

let map_range_empty () =
  with_pool 4 (fun pool ->
      check_int "hi = lo" 0 (Array.length (Pool.map_range pool ~lo:3 ~hi:3 Fun.id));
      check_int "hi < lo" 0 (Array.length (Pool.map_range pool ~lo:3 ~hi:1 Fun.id)))

let reduce_folds_in_index_order () =
  with_pool 4 (fun pool ->
      (* String concatenation is order-sensitive: only a left-to-right
         index-order fold yields "0123456789". *)
      let s =
        Pool.reduce pool ~lo:0 ~hi:10 ~map:string_of_int ~fold:( ^ ) ~init:""
      in
      Alcotest.(check string) "ordered fold" "0123456789" s)

exception Boom of int

let exception_propagates_and_pool_survives () =
  with_pool 4 (fun pool ->
      (try
         ignore
           (Pool.map_range pool ~lo:0 ~hi:64 (fun i ->
                if i = 17 then raise (Boom i) else i));
         Alcotest.fail "expected Boom"
       with Boom i -> check_int "failing index" 17 i);
      (* The pool must be reusable after a failed task. *)
      Alcotest.(check (array int))
        "pool survives" (Array.init 8 Fun.id)
        (Pool.map_range pool ~lo:0 ~hi:8 Fun.id))

let nested_calls_run_inline () =
  with_pool 4 (fun pool ->
      (* A map_range inside a pool task must not deadlock waiting for
         workers that are busy running the outer task. *)
      let result =
        Pool.map_range pool ~lo:0 ~hi:6 (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_range pool ~lo:0 ~hi:(i + 1) Fun.id))
      in
      Alcotest.(check (array int))
        "nested totals" [| 0; 1; 3; 6; 10; 15 |] result)

let iter_range_writes_all_slots () =
  with_pool 4 (fun pool ->
      let hit = Array.make 50 0 in
      Pool.iter_range pool ~lo:0 ~hi:50 (fun i -> hit.(i) <- hit.(i) + 1);
      Alcotest.(check (array int)) "each index once" (Array.make 50 1) hit)

let metrics_merge_across_domains () =
  Obs.Control.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Control.set_enabled false)
    (fun () ->
      with_pool 4 (fun pool ->
          let c = Obs.Metrics.counter "exec.test.hits" in
          Pool.iter_range pool ~lo:0 ~hi:200 (fun _ -> Obs.Metrics.incr c);
          (* Workers incremented their own shards; a read from the main
             domain must see the merged total. *)
          check_int "merged count" 200 (Obs.Metrics.count c)))

let spans_keep_caller_path_on_workers () =
  Obs.Control.set_enabled true;
  Obs.Span.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Control.set_enabled false)
    (fun () ->
      with_pool 4 (fun pool ->
          Obs.Span.with_span "outer" (fun () ->
              Pool.iter_range pool ~lo:0 ~hi:40 (fun _ ->
                  Obs.Span.with_span "inner" ignore)));
          let totals = Obs.Span.totals () in
          (match List.assoc_opt "outer/inner" totals with
          | Some (t : Obs.Span.totals) ->
            check_int "all inner spans nested under outer" 40 t.count
          | None -> Alcotest.fail "no outer/inner span recorded");
          check_bool "no orphan inner span (caller context kept)" false
            (List.mem_assoc "inner" totals))

let config_clamps_and_resolves () =
  check_bool "recommended >= 1" true (Config.recommended () >= 1);
  let before = Config.jobs () in
  Config.set_jobs 3;
  check_int "override wins" 3 (Config.jobs ());
  Config.set_jobs 0;
  check_int "clamped up to 1" 1 (Config.jobs ());
  Config.set_jobs 10_000;
  check_int "clamped down to max_jobs" Config.max_jobs (Config.jobs ());
  Config.set_jobs before

let global_pool_resizes () =
  let before = Config.jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_jobs before)
    (fun () ->
      Pool.set_jobs 2;
      check_int "global follows set_jobs" 2 (Pool.jobs (Pool.global ()));
      Pool.set_jobs 1;
      check_int "resized down" 1 (Pool.jobs (Pool.global ())))

let suites =
  [
    ( "exec.pool",
      [
        case "map_range identity" map_range_identity;
        case "same result at jobs 1/2/4" map_range_jobs_agree;
        case "map_range offset range" map_range_offset_range;
        case "map_range empty" map_range_empty;
        case "reduce folds in index order" reduce_folds_in_index_order;
        case "exception propagates, pool survives"
          exception_propagates_and_pool_survives;
        case "nested calls run inline" nested_calls_run_inline;
        case "iter_range covers all slots" iter_range_writes_all_slots;
        case "metrics merge across domains" metrics_merge_across_domains;
        case "spans keep caller path on workers"
          spans_keep_caller_path_on_workers;
      ] );
    ( "exec.config",
      [
        case "clamping and resolution" config_clamps_and_resolves;
        case "global pool resizes" global_pool_resizes;
      ] );
  ]
