(* Bit-parallel batch kernel suite: the QCheck equivalence oracle
   against per-source Foremost sweeps (Sets and Single labellings,
   ragged batches), the per-lane readouts, the pow2-words workspace
   growth rule, the rebuilt all-pairs consumers against their scalar
   paths, and job-count determinism of the pooled batch driver. *)

module Graph = Sgraph.Graph
module Rng = Prng.Rng
open Temporal
open Helpers

(* ------------------------------------------------------------------ *)
(* Bit utilities *)

let bit_utils () =
  check_int "popcount 0" 0 (Batch.popcount 0);
  check_int "popcount 1" 1 (Batch.popcount 1);
  check_int "popcount -1" Sys.int_size (Batch.popcount (-1));
  check_int "popcount max_int" (Sys.int_size - 1) (Batch.popcount max_int);
  check_int "popcount min_int" 1 (Batch.popcount min_int);
  check_int "popcount 0b1011" 3 (Batch.popcount 0b1011);
  for j = 0 to Sys.int_size - 1 do
    check_int (Printf.sprintf "ntz bit %d" j) j (Batch.ntz (1 lsl j))
  done;
  Alcotest.check_raises "ntz 0 raises"
    (Invalid_argument "Batch.ntz: zero") (fun () -> ignore (Batch.ntz 0))

let batch_shapes () =
  check_int "lane_width is the word size" Sys.int_size Batch.lane_width;
  check_int "one ragged batch" 1 (Batch.batch_count ~n:5);
  check_int "exact batches" 2 (Batch.batch_count ~n:(2 * Batch.lane_width));
  check_int "ragged tail batch" 3
    (Batch.batch_count ~n:((2 * Batch.lane_width) + 1));
  let n = Batch.lane_width + 7 in
  let tail = Batch.batch_sources ~n 1 in
  check_int "tail width" 7 (Array.length tail);
  check_int "tail first source" Batch.lane_width tail.(0)

(* ------------------------------------------------------------------ *)
(* Equivalence oracle: batched arrivals = per-source Foremost, for both
   labellings, any start time, and every batch shape (n <= 8 always
   exercises a ragged batch; the fixed cases below add full words and
   full-word-plus-ragged-tail shapes). *)

let check_against_foremost ?(start_time = 1) net =
  let n = Tgraph.n net in
  let ok = ref true in
  let batches = Batch.batch_count ~n in
  for b = 0 to batches - 1 do
    let sources = Batch.batch_sources ~n b in
    let t = Batch.sweep ~start_time net ~sources in
    let row = Array.make n (-1) in
    Array.iteri
      (fun lane s ->
        let oracle = Foremost.run ~start_time net s in
        let oracle_arrival = Foremost.arrival_array oracle in
        Batch.arrivals_into t ~lane row;
        for v = 0 to n - 1 do
          if row.(v) <> oracle_arrival.(v) then ok := false;
          if Batch.arrival t ~lane v <> oracle_arrival.(v) then ok := false;
          let reached = Batch.reached_word t v land (1 lsl lane) <> 0 in
          if reached <> (oracle_arrival.(v) < max_int) then ok := false
        done;
        if Batch.reached_count t ~lane <> Foremost.reachable_count oracle then
          ok := false;
        if Batch.eccentricity t ~lane <> Foremost.max_distance oracle then
          ok := false;
        if Batch.source t lane <> s then ok := false)
      sources
  done;
  !ok

let oracle_sets =
  qcase ~count:150 ~print:print_params
    "batched arrivals = Foremost (Sets labelling)" gen_params (fun params ->
      check_against_foremost (random_tnet params))

let oracle_single =
  qcase ~count:150 ~print:print_params
    "batched arrivals = Foremost (Single labelling)" gen_params
    (fun (n, seed, a, _) ->
      let g = random_graph ~n ~seed in
      let net = Assignment.uniform_single (Rng.create (seed + 1)) g ~a in
      check_against_foremost net)

let oracle_start_time =
  qcase ~count:80 ~print:print_params "batched arrivals = Foremost (start_time 3)"
    gen_params (fun params ->
      check_against_foremost ~start_time:3 (random_tnet params))

(* The eccentricity-only sweep must agree with folding the full sweep's
   per-lane eccentricities — including None on any incomplete lane —
   for every batch shape and a later start time. *)
let batch_ecc_fold ?start_time net sources =
  let t = Batch.sweep ?start_time net ~sources in
  let rec scan worst lane =
    if lane >= Batch.lanes t then Some worst
    else
      match Batch.eccentricity t ~lane with
      | None -> None
      | Some e -> scan (Stdlib.max worst e) (lane + 1)
  in
  scan 0 0

let oracle_sweep_diameter =
  qcase ~count:150 ~print:print_params
    "sweep_diameter = eccentricity fold of the full sweep" gen_params
    (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let ok = ref true in
      for b = 0 to Batch.batch_count ~n - 1 do
        let sources = Batch.batch_sources ~n b in
        if Batch.sweep_diameter net ~sources <> batch_ecc_fold net sources
        then ok := false;
        if
          Batch.sweep_diameter ~start_time:3 net ~sources
          <> batch_ecc_fold ~start_time:3 net sources
        then ok := false
      done;
      !ok)

(* Full-word and ragged-tail batch shapes around the lane width. *)
let oracle_word_boundaries () =
  List.iter
    (fun n ->
      let g = Sgraph.Gen.clique Directed n in
      let net = Assignment.normalized_uniform (rng ~seed:(900 + n) ()) g in
      check_bool (Printf.sprintf "clique n=%d matches Foremost" n) true
        (check_against_foremost net))
    [
      Batch.lane_width - 1; Batch.lane_width; Batch.lane_width + 1;
      (2 * Batch.lane_width) + 5;
    ]

let oracle_fixture () =
  check_bool "fixture matches Foremost" true (check_against_foremost (fixture ()));
  check_bool "directed line matches Foremost" true
    (check_against_foremost (directed_line ()))

let sweep_argument_checks () =
  let net = fixture () in
  Alcotest.check_raises "empty sources"
    (Invalid_argument "Batch.sweep: need 1 .. lane_width sources") (fun () ->
      ignore (Batch.sweep net ~sources:[||]));
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Batch.sweep: source out of range") (fun () ->
      ignore (Batch.sweep net ~sources:[| 99 |]));
  Alcotest.check_raises "bad start time"
    (Invalid_argument "Batch.sweep: start_time must be >= 1") (fun () ->
      ignore (Batch.sweep ~start_time:0 net ~sources:[| 0 |]))

(* Duplicate sources: lanes are independent, so twin lanes must agree. *)
let duplicate_lanes () =
  let net = fixture () in
  let t = Batch.sweep net ~sources:[| 2; 2; 0 |] in
  for v = 0 to 4 do
    check_int
      (Printf.sprintf "twin lanes agree at %d" v)
      (Batch.arrival t ~lane:0 v)
      (Batch.arrival t ~lane:1 v)
  done;
  check_int "twin reach counts" (Batch.reached_count t ~lane:0)
    (Batch.reached_count t ~lane:1)

(* ------------------------------------------------------------------ *)
(* Workspace growth: batch slots round to a power of two of their own
   word counts — the arrival matrix in particular is pow2(n * lanes),
   not pow2(n) * lanes — and growth feeds kernel.workspace_growths. *)

let is_pow2 x = x > 0 && x land (x - 1) = 0

let workspace_pow2_words () =
  let probe n =
    let g = Sgraph.Gen.clique Directed n in
    let net = Assignment.normalized_uniform (rng ~seed:n ()) g in
    ignore (Batch.sweep net ~sources:(Batch.batch_sources ~n 0));
    Workspace.get_batch ~n ~lanes:1
  in
  List.iter
    (fun n ->
      let ws = probe n in
      let words = Array.length ws.Workspace.lane_reached in
      check_bool
        (Printf.sprintf "bitset words pow2 at n=%d" n)
        true
        (is_pow2 words && words >= n);
      check_int "delta matches bitset capacity" words
        (Array.length ws.Workspace.lane_delta);
      check_int "dirty matches bitset capacity" words
        (Array.length ws.Workspace.lane_dirty);
      let matrix = Array.length ws.Workspace.lane_arrival in
      let lanes = Stdlib.min n Batch.lane_width in
      check_bool
        (Printf.sprintf "arrival matrix pow2 words at n=%d" n)
        true
        (is_pow2 matrix && matrix >= n * lanes);
      check_int "per-lane counts at full width" Batch.lane_width
        (Array.length ws.Workspace.lane_counts))
    [ 5; 40; 70 ]

let workspace_growth_counted () =
  let count () =
    Obs.Metrics.count (Obs.Metrics.counter "kernel.workspace_growths")
  in
  Obs.Metrics.reset ();
  Obs.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Control.set_enabled false)
    (fun () ->
      let d =
        Domain.spawn (fun () ->
            (* Fresh domain = fresh DLS workspace: from-scratch growth. *)
            let before = count () in
            let g = Sgraph.Gen.clique Directed 40 in
            let net = Assignment.normalized_uniform (rng ()) g in
            ignore (Batch.sweep net ~sources:(Batch.batch_sources ~n:40 0));
            let after_small = count () in
            let g2 = Sgraph.Gen.clique Directed 80 in
            let net2 = Assignment.normalized_uniform (rng ()) g2 in
            ignore (Batch.sweep net2 ~sources:(Batch.batch_sources ~n:80 0));
            (before, after_small, count ()))
      in
      let before, after_small, after_large = Domain.join d in
      check_bool "first batch sweep grows" true (after_small > before);
      check_bool "larger n grows again" true (after_large > after_small))

(* ------------------------------------------------------------------ *)
(* Rebuilt consumers: batched results = scalar results.  (The scalar
   paths stay live behind Batch.force_scalar, so pin both.) *)

let consumers_match =
  qcase ~count:100 ~print:print_params "diameter/reachability consumers match"
    gen_params (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      Distance.instance_diameter net = Distance.instance_diameter_scalar net
      && Distance.all_pairs net
         = Array.init n (fun u ->
               let arrival = Foremost.arrival_array (Foremost.run net u) in
               arrival.(u) <- 0;
               Array.sub arrival 0 n)
      && Reachability.reachable_pair_count net
         = Array.fold_left ( + ) 0
             (Array.init n (fun u ->
                  Foremost.reachable_count (Foremost.run net u) - 1))
      && Reachability.treach net
         = (Reachability.missing_pairs net = []))

let closeness_matches =
  qcase ~count:60 ~print:print_params "closeness/reach_counts match scalar"
    gen_params (fun params ->
      let net = random_tnet params in
      let n = Tgraph.n net in
      let scalar_out =
        Array.init n (fun u ->
            let arrivals = Foremost.arrival_array (Foremost.run net u) in
            let total = ref 0. in
            for v = 0 to n - 1 do
              if v <> u && arrivals.(v) > 0 && arrivals.(v) < max_int then
                total := !total +. (1. /. float_of_int arrivals.(v))
            done;
            (* Multiply by the reciprocal exactly as Centrality.normalise
               does — dividing here would differ in the last ulp. *)
            if n <= 1 then !total
            else !total *. (1. /. float_of_int (n - 1)))
      in
      Centrality.out_closeness net = scalar_out
      && Centrality.reach_counts net
         = Array.init n (fun u ->
               Foremost.reachable_count (Foremost.run net u)))

(* missing_pairs keeps its ascending (u, v) order. *)
let missing_pairs_order () =
  let net = directed_line () in
  (* 2 -> 0 at label 2 then nothing onward: several pairs are statically
     but not temporally connected. *)
  let pairs = Reachability.missing_pairs net in
  check_bool "ascending order" true
    (List.sort compare pairs = pairs);
  List.iter
    (fun (u, v) ->
      check_bool
        (Printf.sprintf "pair (%d,%d) genuinely missing" u v)
        false
        (Reachability.temporally_reachable net u v))
    pairs

(* ------------------------------------------------------------------ *)
(* Determinism: the pooled batch driver returns identical values at any
   job count, and probes stay job-count-invariant. *)

let pooled_determinism () =
  let n = (2 * Batch.lane_width) + 9 in
  let g = Sgraph.Gen.clique Directed n in
  let net = Assignment.normalized_uniform (rng ~seed:4242 ()) g in
  let run jobs =
    let pool = Exec.Pool.create ~jobs in
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () ->
        (* Route through the global-pool driver by temporarily resizing
           the global pool instead: simpler to just compare the
           consumer results, which is what the contract promises. *)
        Exec.Pool.set_jobs jobs;
        ( Distance.instance_diameter net,
          Reachability.reachable_pair_count net,
          Centrality.reach_counts net ))
  in
  let d1, r1, c1 = run 1 in
  let d4, r4, c4 = run 4 in
  Exec.Pool.set_jobs 1;
  Alcotest.(check (option int)) "diameter identical at -j1/-j4" d1 d4;
  check_int "pair count identical at -j1/-j4" r1 r4;
  check_bool "reach counts identical at -j1/-j4" true (c1 = c4)

let probes_deterministic () =
  let n = Batch.lane_width + 3 in
  let g = Sgraph.Gen.clique Directed n in
  let net = Assignment.normalized_uniform (rng ~seed:7 ()) g in
  let counters jobs =
    Obs.Metrics.reset ();
    Obs.Control.set_enabled true;
    Exec.Pool.set_jobs jobs;
    ignore (Distance.instance_diameter net);
    Obs.Control.set_enabled false;
    let c name = Obs.Metrics.count (Obs.Metrics.counter name) in
    (c "kernel.batch_sweeps", c "kernel.batch_edges_scanned",
     c "kernel.lane_saturations")
  in
  let s1, e1, l1 = counters 1 in
  let s4, e4, l4 = counters 4 in
  Exec.Pool.set_jobs 1;
  check_int "two batches swept" 2 s1;
  check_int "sweeps job-invariant" s1 s4;
  check_int "edges scanned job-invariant" e1 e4;
  check_int "every lane saturated (clique)" n l1;
  check_int "saturations job-invariant" l1 l4

let suites =
  [
    ( "batch",
      [
        case "bit utilities" bit_utils;
        case "batch shapes" batch_shapes;
        oracle_sets;
        oracle_single;
        oracle_start_time;
        oracle_sweep_diameter;
        case "word-boundary batch shapes" oracle_word_boundaries;
        case "fixture oracle" oracle_fixture;
        case "argument checks" sweep_argument_checks;
        case "duplicate sources share results" duplicate_lanes;
        case "workspace rounds to pow2 words" workspace_pow2_words;
        case "workspace growth counted per domain" workspace_growth_counted;
        consumers_match;
        closeness_matches;
        case "missing_pairs ascending order" missing_pairs_order;
        case "pooled consumers identical across job counts" pooled_determinism;
        case "batch probes job-invariant" probes_deterministic;
      ] );
  ]
