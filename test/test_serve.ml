(* lib/serve: wire protocol codecs and framing, manifest corpus, the
   batching query engine's robustness contract (admission bound,
   deadlines, drain-flush, caches), and a live in-process server —
   plus the retry/shutdown/store regressions that ride with it:
   deterministic backoff jitter and retry budgets, the
   register-during-drain race, and concurrent quarantine recovery. *)

open Helpers
module Proto = Serve.Proto
module Corpus = Serve.Corpus
module Engine = Serve.Engine
module Server = Serve.Server
module Client = Serve.Client
module Objects = Store.Objects

let check_string = Alcotest.(check string)

(* Fresh scratch directory per test; best-effort removal. *)
let with_tmp_dir f =
  let dir = Filename.temp_file "ephemeral-test" ".serve" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> Store.Fsio.remove_tree dir) (fun () -> f dir)

let flip_byte path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  let b = Bytes.of_string bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let count_files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.length (Sys.readdir dir)
  else 0

(* ------------------------------------------------------------------ *)
(* Protocol codecs *)

let q ?(target = 0) ?(deadline_ms = 0) instance source =
  { Proto.instance; source; target; deadline_ms }

let request_roundtrip () =
  let reqs =
    [
      Proto.Ping; Proto.Health; Proto.Ready; Proto.List; Proto.Stats;
      Proto.Foremost (q "clq" 3 ~target:7 ~deadline_ms:250);
      Proto.Arrivals (q "a-b" 0);
      Proto.Reach (q "x" 12 ~deadline_ms:1);
      Proto.Ecc (q "star16" 15);
    ]
  in
  List.iter
    (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Stdlib.Ok r' -> check_bool "request round-trips" true (r = r')
      | Stdlib.Error (_, m) -> Alcotest.failf "decode failed: %s" m)
    reqs

let response_roundtrip () =
  let resps =
    [
      Proto.Ok_empty;
      Proto.Ok_value (Some 42);
      Proto.Ok_value None;
      Proto.Ok_count 0;
      Proto.Ok_count 100_000;
      Proto.Ok_vector [||];
      Proto.Ok_vector [| 0; 17; max_int; 3; max_int |];
      Proto.Ok_list [ ("clq", "available", "n=8 a=8 dense"); ("bad", "failed", "bad spec: missing id") ];
      Proto.Ok_list [];
      Proto.Ok_text "queries=12 shed=0";
      Proto.Error (Proto.Resource_exhausted, "queue full");
      Proto.Error (Proto.Deadline_exceeded, "");
    ]
  in
  List.iter
    (fun r ->
      match Proto.decode_response (Proto.encode_response r) with
      | Stdlib.Ok r' -> check_bool "response round-trips" true (r = r')
      | Stdlib.Error m -> Alcotest.failf "decode failed: %s" m)
    resps

let all_error_codes =
  [
    Proto.Parse_error; Proto.Unknown_op; Proto.Unknown_instance;
    Proto.Unavailable; Proto.Resource_exhausted; Proto.Deadline_exceeded;
    Proto.Shutting_down; Proto.Too_large; Proto.Bad_arg; Proto.Internal;
  ]

let error_code_roundtrip () =
  List.iter
    (fun c ->
      match Proto.decode_response (Proto.encode_response (Proto.Error (c, "m"))) with
      | Stdlib.Ok (Proto.Error (c', "m")) ->
        check_bool
          (Printf.sprintf "code %s survives" (Proto.error_code_to_string c))
          true (c = c')
      | _ -> Alcotest.fail "error response did not round-trip")
    all_error_codes

let decode_rejects_garbage () =
  (match Proto.decode_request "\xee" with
  | Stdlib.Error (Proto.Unknown_op, _) -> ()
  | _ -> Alcotest.fail "unknown opcode must be Unknown_op");
  (match Proto.decode_request "\x10\x00" with
  | Stdlib.Error (Proto.Parse_error, _) -> ()
  | _ -> Alcotest.fail "truncated query must be Parse_error");
  (match Proto.decode_request "" with
  | Stdlib.Error (Proto.Parse_error, _) -> ()
  | _ -> Alcotest.fail "empty request must be Parse_error");
  (match Proto.decode_request (Proto.encode_request Proto.Ping ^ "\x00") with
  | Stdlib.Error (Proto.Parse_error, _) -> ()
  | _ -> Alcotest.fail "trailing bytes must be Parse_error");
  (match Proto.decode_response (Proto.encode_response Proto.Ok_empty ^ "!") with
  | Stdlib.Error _ -> ()
  | Stdlib.Ok _ -> Alcotest.fail "trailing response bytes must fail");
  match Proto.decode_response "" with
  | Stdlib.Error _ -> ()
  | Stdlib.Ok _ -> Alcotest.fail "empty response must fail"

let render_deterministic () =
  check_string "value" (Proto.render_response (Proto.Ok_value (Some 3)))
    (Proto.render_response (Proto.Ok_value (Some 3)));
  check_bool "unreachable renders as dash" true
    (contains (Proto.render_response (Proto.Ok_value None)) "-");
  check_bool "vector sentinel renders as dash" true
    (contains (Proto.render_response (Proto.Ok_vector [| 1; max_int |])) "-")

(* ------------------------------------------------------------------ *)
(* Framing over a socketpair *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let frame_roundtrip () =
  with_socketpair (fun a b ->
      Proto.write_frame a "hello";
      Proto.write_frame a "";
      (match Proto.read_frame ~deadline_s:2. b with
      | Proto.Frame s -> check_string "payload" "hello" s
      | _ -> Alcotest.fail "expected a frame");
      match Proto.read_frame ~deadline_s:2. b with
      | Proto.Frame s -> check_string "empty payload" "" s
      | _ -> Alcotest.fail "expected the empty frame")

let frame_eof () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Proto.read_frame ~deadline_s:2. b with
      | Proto.Eof -> ()
      | _ -> Alcotest.fail "closed peer must read Eof")

let frame_timeout () =
  with_socketpair (fun a b ->
      (* Half a header, then silence: the slow-loris read must give up
         at its deadline rather than block. *)
      let n = Unix.write_substring a "\x00\x00" 0 2 in
      check_int "partial header written" 2 n;
      let t0 = Unix.gettimeofday () in
      match Proto.read_frame ~deadline_s:0.1 b with
      | Proto.Timeout ->
        check_bool "returned promptly" true (Unix.gettimeofday () -. t0 < 2.)
      | _ -> Alcotest.fail "stalled frame must time out")

let frame_oversized () =
  with_socketpair (fun a b ->
      (* A header declaring max_frame + 1 bytes; the reader must refuse
         before allocating the payload. *)
      let declared = Proto.max_frame + 1 in
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int declared);
      ignore (Unix.write a hdr 0 4);
      (match Proto.read_frame ~deadline_s:2. b with
      | Proto.Oversized n -> check_int "declared length" declared n
      | _ -> Alcotest.fail "oversized declaration must be refused");
      Alcotest.check_raises "oversized write refused"
        (Invalid_argument "Proto.write_frame: payload too large")
        (fun () -> Proto.write_frame a (String.make (Proto.max_frame + 1) 'x')))

(* ------------------------------------------------------------------ *)
(* Codec properties: encode∘decode = id over generated values, and no
   truncation of a valid payload ever parses — the router forwards
   unroutable bytes opaquely, so rejection behaviour is part of the
   sharded byte-identity contract. *)

let gen_query =
  QCheck2.Gen.(
    let* instance = string_size (int_range 0 48) in
    let* source = int_range 0 0xFFFF in
    let* target = int_range 0 0xFFFF in
    let+ deadline_ms = int_range 0 1_000_000 in
    { Proto.instance; source; target; deadline_ms })

let gen_request =
  QCheck2.Gen.(
    let* q = gen_query in
    oneofl
      [
        Proto.Ping; Proto.Health; Proto.Ready; Proto.List; Proto.Stats;
        Proto.Foremost q; Proto.Arrivals q; Proto.Reach q; Proto.Ecc q;
      ])

let gen_response =
  QCheck2.Gen.(
    let small = string_size (int_range 0 32) in
    (* u32 codomain with the unreachable sentinel sprinkled in. *)
    let cell = map (fun x -> if x mod 7 = 0 then max_int else x) (int_range 0 100_000) in
    oneof
      [
        return Proto.Ok_empty;
        map (fun v -> Proto.Ok_value v) (option (int_range 0 1_000_000));
        map (fun k -> Proto.Ok_count k) (int_range 0 10_000_000);
        map (fun l -> Proto.Ok_vector (Array.of_list l))
          (list_size (int_range 0 24) cell);
        map (fun rows -> Proto.Ok_list rows)
          (list_size (int_range 0 6) (triple small small small));
        map (fun s -> Proto.Ok_text s) small;
        map2 (fun c m -> Proto.Error (c, m)) (oneofl all_error_codes) small;
      ])

let prop_request_roundtrip r =
  match Proto.decode_request (Proto.encode_request r) with
  | Stdlib.Ok r' -> r = r'
  | Stdlib.Error (_, m) -> QCheck2.Test.fail_reportf "decode failed: %s" m

let prop_response_roundtrip r =
  match Proto.decode_response (Proto.encode_response r) with
  | Stdlib.Ok r' -> r = r'
  | Stdlib.Error m -> QCheck2.Test.fail_reportf "decode failed: %s" m

(* Every strict prefix of a valid request payload must be rejected —
   there is no valid payload that is also a prefix of a longer one. *)
let prop_request_prefix_rejected r =
  let enc = Proto.encode_request r in
  let ok = ref true in
  for len = 0 to String.length enc - 1 do
    match Proto.decode_request (String.sub enc 0 len) with
    | Stdlib.Error _ -> ()
    | Stdlib.Ok _ -> ok := false
  done;
  (* ...and so must trailing garbage after a complete one. *)
  (match Proto.decode_request (enc ^ "\x00") with
  | Stdlib.Error (Proto.Parse_error, _) -> ()
  | _ -> ok := false);
  !ok

let prop_response_prefix_rejected r =
  let enc = Proto.encode_response r in
  let ok = ref true in
  for len = 0 to String.length enc - 1 do
    match Proto.decode_response (String.sub enc 0 len) with
    | Stdlib.Error _ -> ()
    | Stdlib.Ok _ -> ok := false
  done;
  !ok

(* The router's routing key agrees with the full decoder: queries peek
   their instance id, control ops peek nothing. *)
let prop_peek_agrees r =
  let peeked = Proto.peek_instance (Proto.encode_request r) in
  match r with
  | Proto.Foremost q | Proto.Arrivals q | Proto.Reach q | Proto.Ecc q ->
    peeked = Some q.Proto.instance
  | _ -> peeked = None

(* Hand-built rejection vectors: payloads that lie about their instance
   length, or stop mid-operand. *)
let query_truncation_vectors () =
  let mk op k body =
    Printf.sprintf "%c%c%c%s" (Char.chr op)
      (Char.chr ((k lsr 8) land 0xff))
      (Char.chr (k land 0xff))
      body
  in
  List.iter
    (fun op ->
      (* Declared instance length runs past the payload. *)
      (match Proto.decode_request (mk op 9 "short") with
      | Stdlib.Error (Proto.Parse_error, _) -> ()
      | _ -> Alcotest.failf "op %#x: lying length must be Parse_error" op);
      check_bool
        (Printf.sprintf "op %#x: peek refuses the lying length" op)
        true
        (Proto.peek_instance (mk op 9 "short") = None);
      (* Maximal u16 length on a near-empty payload. *)
      (match Proto.decode_request (mk op 0xFFFF "x") with
      | Stdlib.Error (Proto.Parse_error, _) -> ()
      | _ -> Alcotest.failf "op %#x: oversize length must be Parse_error" op);
      (* Instance present, u32 operands missing. *)
      match Proto.decode_request (mk op 2 "ab") with
      | Stdlib.Error (Proto.Parse_error, _) -> ()
      | _ -> Alcotest.failf "op %#x: missing operands must be Parse_error" op)
    [ 0x10; 0x11; 0x12; 0x13 ]

(* ------------------------------------------------------------------ *)
(* Corpus: spec parsing and degraded loading *)

let spec_defaults () =
  match Corpus.parse_spec "id=clq,family=clique,n=8" with
  | Stdlib.Ok s ->
    check_string "id" "clq" s.Corpus.id;
    check_int "a defaults to n" 8 s.Corpus.a;
    check_int "r defaults to 1" 1 s.Corpus.r;
    check_int "seed defaults to 1" 1 s.Corpus.seed;
    check_string "canonical form" "id=clq,family=clique,n=8,a=8,r=1,seed=1"
      (Corpus.spec_to_string s)
  | Stdlib.Error m -> Alcotest.failf "parse failed: %s" m

let spec_errors () =
  let expect_err line =
    match Corpus.parse_spec line with
    | Stdlib.Error _ -> ()
    | Stdlib.Ok _ -> Alcotest.failf "%S must not parse" line
  in
  expect_err "family=clique,n=8";           (* missing id *)
  expect_err "id=x,family=clique";          (* missing n *)
  expect_err "id=x,family=clique,n=0";      (* non-positive n *)
  expect_err "id=x,family=nope,n=4";        (* unknown family *)
  expect_err "id=x,family=clique,n=four";   (* non-integer *)
  expect_err "id=x,family=clique,n=4,n=5";  (* duplicate key *)
  expect_err "id=x,family=clique,n=4,z=1";  (* unknown key *)
  expect_err "id=x,family=clique,n=4,r=0";  (* r < 1 *)
  expect_err "just words"                   (* not key=value at all *)

let degraded_load () =
  let corpus =
    Corpus.load ~backend:Sim.Backend.Implicit
      [
        "# comment";
        "";
        "id=ok,family=path,n=5,seed=2";
        "id=bad,family=clique,n=0";
        "total garbage";
      ]
  in
  check_bool "degraded" true (Corpus.degraded corpus);
  check_bool "still healthy" true (Corpus.healthy corpus);
  check_int "three instances" 3 (List.length (Corpus.instances corpus));
  (match Corpus.find corpus "ok" with
  | Some { status = Corpus.Available _; _ } -> ()
  | _ -> Alcotest.fail "ok instance must be available");
  (match Corpus.find corpus "bad" with
  | Some { status = Corpus.Failed _; spec = None; _ } -> ()
  | _ -> Alcotest.fail "bad spec must be Failed with no spec");
  (* The unparseable line still gets a stable positional id. *)
  (match Corpus.find corpus "line5" with
  | Some { status = Corpus.Failed _; _ } -> ()
  | _ -> Alcotest.fail "garbage line must salvage a positional id");
  let rows = Corpus.list_rows corpus in
  check_int "list rows" 3 (List.length rows);
  match rows with
  | (id0, st0, _) :: _ ->
    check_string "manifest order" "ok" id0;
    check_string "status word" "available" st0
  | [] -> Alcotest.fail "rows empty"

let all_failed_unhealthy () =
  let corpus = Corpus.load ~backend:Sim.Backend.Dense [ "id=b,family=star,n=0" ] in
  check_bool "degraded" true (Corpus.degraded corpus);
  check_bool "not healthy" false (Corpus.healthy corpus)

(* Dense and implicit backends must serve label-identical instances:
   every arrival row byte-compares.  The soak's single oracle and the
   scripted-session byte-diff both stand on this. *)
let backend_row_identity () =
  let line = "id=g,family=gnp:4,n=24,a=12,r=2,seed=9" in
  let row backend src =
    match Corpus.available (Corpus.load ~backend [ line ]) with
    | [ (_, net) ] -> Array.copy (Temporal.Foremost.arrivals_borrowed net src)
    | _ -> Alcotest.fail "instance did not load"
  in
  for src = 0 to 23 do
    Alcotest.(check (array int))
      (Printf.sprintf "row %d identical across backends" src)
      (row Sim.Backend.Dense src)
      (row Sim.Backend.Implicit src)
  done

(* ------------------------------------------------------------------ *)
(* Engine: admission, deadlines, drain, caches *)

let test_corpus ?(backend = Sim.Backend.Implicit) ?(n = 7) ?(seed = 5) () =
  Corpus.load ~backend
    [ Printf.sprintf "id=t,family=path,n=%d,a=%d,r=1,seed=%d" n n seed ]

let oracle_row corpus src =
  match Corpus.available corpus with
  | (_, net) :: _ ->
    (* The borrowed scratch may be longer than n; only the prefix is
       the row. *)
    Array.sub (Temporal.Foremost.arrivals_borrowed net src) 0
      (Temporal.Tgraph.n net)
  | [] -> Alcotest.fail "no available instance"

let expect_row = function
  | Engine.Row r -> r
  | Engine.Err (c, m) ->
    Alcotest.failf "expected a row, got %s: %s" (Proto.error_code_to_string c) m

let expect_admitted = function
  | Engine.Admitted t -> t
  | Engine.Rejected (c, m) ->
    Alcotest.failf "expected admission, got %s: %s"
      (Proto.error_code_to_string c) m

let engine_answers_correct_rows () =
  let corpus = test_corpus () in
  let eng = Engine.create corpus in
  let tickets =
    List.init 7 (fun src ->
        (src, expect_admitted (Engine.submit eng ~instance:"t" ~source:src ())))
  in
  Engine.process_pending eng;
  List.iter
    (fun (src, t) ->
      Alcotest.(check (array int))
        (Printf.sprintf "row for source %d" src)
        (oracle_row corpus src)
        (expect_row (Engine.await t)))
    tickets;
  check_int "all admitted" 7 (Engine.stats eng).Engine.queries

let engine_rejects_bad_submissions () =
  let corpus =
    Corpus.load ~backend:Sim.Backend.Implicit
      [ "id=t,family=path,n=4"; "id=broken,family=clique,n=0" ]
  in
  let eng = Engine.create corpus in
  (match Engine.submit eng ~instance:"nope" ~source:0 () with
  | Engine.Rejected (Proto.Unknown_instance, _) -> ()
  | _ -> Alcotest.fail "unknown instance must be rejected");
  (match Engine.submit eng ~instance:"broken" ~source:0 () with
  | Engine.Rejected (Proto.Unavailable, _) -> ()
  | _ -> Alcotest.fail "failed instance must answer Unavailable");
  (match Engine.submit eng ~instance:"t" ~source:4 () with
  | Engine.Rejected (Proto.Bad_arg, _) -> ()
  | _ -> Alcotest.fail "out-of-range source must be Bad_arg");
  match Engine.submit eng ~instance:"t" ~source:(-1) () with
  | Engine.Rejected (Proto.Bad_arg, _) -> ()
  | _ -> Alcotest.fail "negative source must be Bad_arg"

(* The admission bound: with the dispatcher never started, the queue
   fills to exactly queue_max and the next submission is shed — no
   unbounded buffering, and queue_peak proves it. *)
let engine_sheds_at_bound () =
  let corpus = test_corpus () in
  let config = { Engine.default_config with Engine.queue_max = 2 } in
  let eng = Engine.create ~config corpus in
  let t0 = expect_admitted (Engine.submit eng ~instance:"t" ~source:0 ()) in
  let t1 = expect_admitted (Engine.submit eng ~instance:"t" ~source:1 ()) in
  (match Engine.submit eng ~instance:"t" ~source:2 () with
  | Engine.Rejected (Proto.Resource_exhausted, _) -> ()
  | _ -> Alcotest.fail "third submit must be shed");
  Engine.process_pending eng;
  ignore (expect_row (Engine.await t0));
  ignore (expect_row (Engine.await t1));
  let s = Engine.stats eng in
  check_int "shed counted" 1 s.Engine.shed;
  check_int "queue peak at bound" 2 s.Engine.queue_peak;
  check_bool "peak never exceeds bound" true (s.Engine.queue_peak <= 2)

let engine_deadline_expires () =
  let corpus = test_corpus () in
  let eng = Engine.create corpus in
  let t =
    expect_admitted
      (Engine.submit eng ~instance:"t" ~source:0 ~deadline_s:0.005 ())
  in
  Unix.sleepf 0.03;
  Engine.process_pending eng;
  (match Engine.await t with
  | Engine.Err (Proto.Deadline_exceeded, _) -> ()
  | Engine.Row _ -> Alcotest.fail "expired job must answer Deadline_exceeded"
  | Engine.Err (c, m) ->
    Alcotest.failf "wrong error %s: %s" (Proto.error_code_to_string c) m);
  check_int "expired counted" 1 (Engine.stats eng).Engine.expired

let engine_drain_flushes_then_refuses () =
  let corpus = test_corpus () in
  let eng = Engine.create corpus in
  let t = expect_admitted (Engine.submit eng ~instance:"t" ~source:3 ()) in
  Engine.drain eng;
  (* The queued job was answered, not dropped. *)
  Alcotest.(check (array int))
    "drained job answered" (oracle_row corpus 3)
    (expect_row (Engine.await t));
  (match Engine.submit eng ~instance:"t" ~source:0 () with
  | Engine.Rejected (Proto.Shutting_down, _) -> ()
  | _ -> Alcotest.fail "post-drain submit must be Shutting_down");
  Engine.drain eng (* idempotent *)

let engine_cache_and_dedupe () =
  let corpus = test_corpus () in
  let eng = Engine.create corpus in
  (* Two jobs for the same source in one cycle: one sweep, two answers. *)
  let ta = expect_admitted (Engine.submit eng ~instance:"t" ~source:2 ()) in
  let tb = expect_admitted (Engine.submit eng ~instance:"t" ~source:2 ()) in
  Engine.process_pending eng;
  let ra = expect_row (Engine.await ta) and rb = expect_row (Engine.await tb) in
  Alcotest.(check (array int)) "deduped rows agree" ra rb;
  check_int "one sweep for duplicate sources" 1 (Engine.stats eng).Engine.sweeps;
  (* A later cycle for the same source hits the row cache: no new sweep. *)
  let tc = expect_admitted (Engine.submit eng ~instance:"t" ~source:2 ()) in
  Engine.process_pending eng;
  ignore (expect_row (Engine.await tc));
  let s = Engine.stats eng in
  check_int "cache hit counted" 1 s.Engine.cache_hits;
  check_int "still one sweep" 1 s.Engine.sweeps

let engine_store_round_trip () =
  with_tmp_dir (fun dir ->
      let corpus = test_corpus () in
      let config store =
        { Engine.default_config with Engine.store = Some store; cache_max = 0 }
      in
      (* First engine computes and persists the row... *)
      let eng1 = Engine.create ~config:(config (Objects.open_ ~dir)) corpus in
      let t1 = expect_admitted (Engine.submit eng1 ~instance:"t" ~source:4 ()) in
      Engine.process_pending eng1;
      let row1 = expect_row (Engine.await t1) in
      check_int "computed, not store-served" 0
        (Engine.stats eng1).Engine.store_hits;
      (* ...a fresh engine over the same store serves it without a sweep. *)
      let eng2 = Engine.create ~config:(config (Objects.open_ ~dir)) corpus in
      let t2 = expect_admitted (Engine.submit eng2 ~instance:"t" ~source:4 ()) in
      Engine.process_pending eng2;
      let row2 = expect_row (Engine.await t2) in
      Alcotest.(check (array int)) "persisted row identical" row1 row2;
      let s = Engine.stats eng2 in
      check_int "served from store" 1 s.Engine.store_hits;
      check_int "no sweep on the hit" 0 s.Engine.sweeps)

(* A corrupted stored row must be recomputed, not trusted: the codec
   check quarantines it and the engine falls back to the kernel. *)
let engine_store_corruption_recovers () =
  with_tmp_dir (fun dir ->
      let corpus = test_corpus () in
      let config store =
        { Engine.default_config with Engine.store = Some store; cache_max = 0 }
      in
      let store1 = Objects.open_ ~dir in
      let eng1 = Engine.create ~config:(config store1) corpus in
      let t1 = expect_admitted (Engine.submit eng1 ~instance:"t" ~source:1 ()) in
      Engine.process_pending eng1;
      ignore (expect_row (Engine.await t1));
      (match Objects.entries store1 with
      | entry :: _ ->
        flip_byte (Objects.object_path store1 ~digest:entry.Objects.digest) 5
      | [] -> Alcotest.fail "row was not persisted");
      let eng2 = Engine.create ~config:(config (Objects.open_ ~dir)) corpus in
      let t2 = expect_admitted (Engine.submit eng2 ~instance:"t" ~source:1 ()) in
      Engine.process_pending eng2;
      Alcotest.(check (array int))
        "recomputed row correct" (oracle_row corpus 1)
        (expect_row (Engine.await t2));
      let s = Engine.stats eng2 in
      check_int "corrupt row is a miss" 0 s.Engine.store_hits;
      check_int "recomputed by sweep" 1 s.Engine.sweeps)

(* The row cache is LRU with touch-on-hit: a re-queried row survives an
   eviction pass that displaces a colder one, and every displacement is
   counted.  (A FIFO cache would evict the re-queried row instead —
   this test distinguishes the policies.) *)
let engine_lru_touch_on_hit () =
  let corpus = test_corpus () in
  let config = { Engine.default_config with Engine.cache_max = 2 } in
  let eng = Engine.create ~config corpus in
  let run_one src =
    let t = expect_admitted (Engine.submit eng ~instance:"t" ~source:src ()) in
    Engine.process_pending eng;
    expect_row (Engine.await t)
  in
  ignore (run_one 0);                     (* cache {0} *)
  ignore (run_one 1);                     (* cache {0, 1} *)
  Alcotest.(check (array int)) "hit serves the correct row"
    (oracle_row corpus 0) (run_one 0);    (* hit: 0 becomes most-recent *)
  check_int "hit counted" 1 (Engine.stats eng).Engine.cache_hits;
  check_int "no eviction while under capacity" 0
    (Engine.stats eng).Engine.evictions;
  ignore (run_one 2);                     (* full: evicts 1, not the hot 0 *)
  check_int "one eviction at capacity" 1 (Engine.stats eng).Engine.evictions;
  ignore (run_one 0);                     (* still cached — the hit saved it *)
  let s = Engine.stats eng in
  check_int "hot row survived the eviction" 2 s.Engine.cache_hits;
  check_int "sweeps only for the three misses" 3 s.Engine.sweeps;
  ignore (run_one 1);                     (* was evicted: must re-sweep *)
  let s = Engine.stats eng in
  check_int "evicted row re-swept" 4 s.Engine.sweeps;
  check_int "second eviction" 2 s.Engine.evictions

(* ------------------------------------------------------------------ *)
(* Sharding: the consistent-hash partition and the router's pure merge
   helpers *)

let shard_manifest =
  [
    "# comment";
    "id=a,family=path,n=4";
    "id=b,family=clique,n=4";
    "not a spec";
    "id=c,family=star,n=5";
    "id=d,family=gnp:3,n=8";
    "id=e,family=clique,n=0";
  ]

let corpus_shard_partition () =
  let ids = Corpus.manifest_ids shard_manifest in
  Alcotest.(check (list string))
    "manifest ids in order, salvaged ids included"
    [ "a"; "b"; "line4"; "c"; "d"; "e" ]
    ids;
  List.iter
    (fun id ->
      check_int (Printf.sprintf "%s: one shard means shard 0" id) 0
        (Corpus.shard_of ~shards:1 id))
    ids;
  let shards = 3 in
  let parts =
    List.init shards (fun k ->
        Corpus.load ~shard:(k, shards) ~backend:Sim.Backend.Implicit
          shard_manifest
        |> Corpus.instances
        |> List.map (fun i -> i.Corpus.spec_id))
  in
  (* Each partition holds exactly the ids the hash assigns to it... *)
  List.iteri
    (fun k part ->
      List.iter
        (fun id ->
          check_int
            (Printf.sprintf "%s landed on its hash shard" id)
            k
            (Corpus.shard_of ~shards id))
        part)
    parts;
  (* ...and the partitions are disjoint and exhaustive: their union is
     the whole manifest, failed and salvaged lines included. *)
  Alcotest.(check (list string))
    "partitions cover the manifest exactly once"
    (List.sort compare ids)
    (List.sort compare (List.concat parts))

let shard_of_range () =
  let ids = [ ""; "a"; "clq1k"; "line17"; String.make 64 'x' ] in
  List.iter
    (fun id ->
      List.iter
        (fun shards ->
          let k = Corpus.shard_of ~shards id in
          check_bool
            (Printf.sprintf "shard_of %S mod %d in range" id shards)
            true
            (k >= 0 && k < shards);
          check_int "deterministic" k (Corpus.shard_of ~shards id))
        [ 1; 2; 3; 4; 7; 16 ])
    ids

let router_stats_text_roundtrip () =
  let v =
    {
      Serve.Ledger.queries = 12; shed = 3; expired = 2; cache_hits = 5;
      store_hits = 1; sweeps = 7; evictions = 4; queue_peak = 9;
      p50_ms = 0.; p99_ms = 0.; qps = 0.; wall_s = 0.; shards = None;
    }
  in
  (match Serve.Router.parse_stats_text (Serve.Router.render_stats_text v) with
  | Some v' ->
    check_bool "tallies survive the round-trip" true (v = v')
  | None -> Alcotest.fail "rendered stats must parse");
  check_bool "garbage does not parse" true
    (Serve.Router.parse_stats_text "hello world" = None);
  check_bool "non-numeric values ignored" true
    (Serve.Router.parse_stats_text "queries=many" = None)

let router_merge_list_rows () =
  let manifest_ids = [ "a"; "b"; "c"; "d" ] in
  let shard0 = [ ("b", "available", "n=4"); ("d", "failed", "boom") ] in
  let shard1 = [ ("a", "available", "n=8") ] in
  let merged =
    Serve.Router.merge_list_rows ~manifest_ids [ shard0; shard1 ]
  in
  Alcotest.(check (list (triple string string string)))
    "manifest order restored; unreported id kept as a failed row"
    [
      ("a", "available", "n=8");
      ("b", "available", "n=4");
      ("c", "failed", "shard unavailable at snapshot");
      ("d", "failed", "boom");
    ]
    merged;
  (* A manifest that repeats an id consumes that id's rows in shard
     order, one per occurrence. *)
  let merged_dup =
    Serve.Router.merge_list_rows ~manifest_ids:[ "x"; "x" ]
      [ [ ("x", "available", "first"); ("x", "failed", "second") ] ]
  in
  Alcotest.(check (list (triple string string string)))
    "duplicate ids merge FIFO"
    [ ("x", "available", "first"); ("x", "failed", "second") ]
    merged_dup

let router_snapshot_health () =
  check_string "all available is ok" "ok"
    (Serve.Router.snapshot_health [ ("a", "available", "") ]);
  check_string "any failed is degraded" "degraded"
    (Serve.Router.snapshot_health
       [ ("a", "available", ""); ("b", "failed", "x") ]);
  check_string "none available is unhealthy" "unhealthy"
    (Serve.Router.snapshot_health [ ("b", "failed", "x") ]);
  check_string "empty snapshot is unhealthy" "unhealthy"
    (Serve.Router.snapshot_health [])

(* ------------------------------------------------------------------ *)
(* Live server over a Unix socket *)

let with_server ?(manifest = [ "id=t,family=path,n=7,seed=5"; "id=broken,family=clique,n=0" ])
    ?(backend = Sim.Backend.Implicit) f =
  with_tmp_dir (fun dir ->
      Store.Fsio.ensure_dir dir;
      let corpus = Corpus.load ~backend manifest in
      let address = Server.Unix_path (Filename.concat dir "srv.sock") in
      let ledger = Filename.concat dir "ledger.json" in
      let config =
        {
          Server.default_config with
          Server.address;
          ledger_path = Some ledger;
          read_timeout_s = 5.;
          engine = { Engine.default_config with Engine.queue_max = 16 };
        }
      in
      let stop = Server.run_background ~config corpus in
      let finish () = stop () in
      Fun.protect ~finally:finish (fun () -> f corpus address ledger))

let expect_ok = function
  | Stdlib.Ok r -> r
  | Stdlib.Error m -> Alcotest.failf "call failed: %s" m

let server_answers_queries () =
  with_server (fun corpus address _ledger ->
      let c = expect_ok (Client.connect ~timeout_s:5. address) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match expect_ok (Client.call c Proto.Ping) with
          | Proto.Ok_empty -> ()
          | _ -> Alcotest.fail "ping must answer Ok_empty");
          let row = oracle_row corpus 0 in
          (match expect_ok (Client.call c (Proto.Arrivals (q "t" 0))) with
          | Proto.Ok_vector v -> Alcotest.(check (array int)) "arrivals" row v
          | _ -> Alcotest.fail "arrivals must answer a vector");
          (match expect_ok (Client.call c (Proto.Foremost (q "t" 0 ~target:6))) with
          | Proto.Ok_value v ->
            check_int_option "foremost"
              (if row.(6) = max_int then None else Some row.(6))
              v
          | _ -> Alcotest.fail "foremost must answer a value");
          (match expect_ok (Client.call c (Proto.Reach (q "t" 0))) with
          | Proto.Ok_count k ->
            check_int "reach" (Array.length (Array.of_list (List.filter (fun x -> x < max_int) (Array.to_list row)))) k
          | _ -> Alcotest.fail "reach must answer a count");
          (match expect_ok (Client.call c (Proto.Foremost (q "nope" 0))) with
          | Proto.Error (Proto.Unknown_instance, _) -> ()
          | _ -> Alcotest.fail "unknown instance must be a typed error");
          (match expect_ok (Client.call c (Proto.Foremost (q "broken" 0))) with
          | Proto.Error (Proto.Unavailable, _) -> ()
          | _ -> Alcotest.fail "degraded instance must answer Unavailable");
          (match expect_ok (Client.call c Proto.Health) with
          | Proto.Ok_text s -> check_bool "health mentions degraded" true (contains s "degraded")
          | _ -> Alcotest.fail "health must answer text");
          match expect_ok (Client.call c Proto.List) with
          | Proto.Ok_list rows -> check_int "list rows" 2 (List.length rows)
          | _ -> Alcotest.fail "list must answer rows"))

let server_drain_publishes_ledger () =
  with_server (fun _corpus address ledger ->
      let c = expect_ok (Client.connect ~timeout_s:5. address) in
      ignore (expect_ok (Client.call c (Proto.Arrivals (q "t" 1))));
      Client.close c;
      check_bool "no ledger before drain" false (Sys.file_exists ledger));
  (* with_server's finally ran the drain; the ledger must now exist. *)
  ()

let server_ledger_contents () =
  with_tmp_dir (fun dir ->
      Store.Fsio.ensure_dir dir;
      let corpus = Corpus.load ~backend:Sim.Backend.Implicit [ "id=t,family=path,n=7,seed=5" ] in
      let address = Server.Unix_path (Filename.concat dir "srv.sock") in
      let ledger = Filename.concat dir "ledger.json" in
      let config =
        { Server.default_config with Server.address; ledger_path = Some ledger }
      in
      let stop = Server.run_background ~config corpus in
      let c = expect_ok (Client.connect ~timeout_s:5. address) in
      ignore (expect_ok (Client.call c (Proto.Arrivals (q "t" 2))));
      Client.close c;
      stop ();
      check_bool "ledger published on drain" true (Sys.file_exists ledger);
      let ic = open_in ledger in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check_bool "schema tag" true (contains text "ephemeral-serve-ledger/v1");
      check_bool "query counted" true (contains text "\"queries\": 1");
      check_bool "socket unlinked" false
        (Sys.file_exists (Filename.concat dir "srv.sock")))

(* The determinism claim at the protocol level: the same scripted
   session renders byte-identically on dense and implicit servers. *)
let server_backend_byte_identical () =
  let script c =
    [
      Client.call c (Proto.Arrivals (q "t" 0));
      Client.call c (Proto.Foremost (q "t" 1 ~target:5));
      Client.call c (Proto.Ecc (q "t" 2));
      Client.call c (Proto.Reach (q "t" 3));
    ]
    |> List.map (fun r -> Proto.render_response (expect_ok r))
    |> String.concat "\n"
  in
  let session backend =
    let out = ref "" in
    with_server ~manifest:[ "id=t,family=path,n=9,a=9,r=2,seed=11" ] ~backend
      (fun _ address _ ->
        let c = expect_ok (Client.connect ~timeout_s:5. address) in
        Fun.protect ~finally:(fun () -> Client.close c)
          (fun () -> out := script c));
    !out
  in
  check_string "dense and implicit sessions byte-identical"
    (session Sim.Backend.Dense)
    (session Sim.Backend.Implicit)

(* ------------------------------------------------------------------ *)
(* Fault.Retry: deterministic jitter and the wall-time budget *)

let backoff_legacy_delays () =
  check_float "k=0" 0.001 (Fault.Retry.backoff_delay 0);
  check_float "k=1" 0.002 (Fault.Retry.backoff_delay 1);
  check_float "k=2" 0.004 (Fault.Retry.backoff_delay 2);
  check_float "capped" 0.05 (Fault.Retry.backoff_delay 12)

let backoff_jitter_deterministic () =
  for k = 0 to 7 do
    let d1 = Fault.Retry.backoff_delay ~jitter:0.5 ~jitter_seed:7L k in
    let d2 = Fault.Retry.backoff_delay ~jitter:0.5 ~jitter_seed:7L k in
    check_float (Printf.sprintf "k=%d reproducible" k) d1 d2;
    let base = Fault.Retry.backoff_delay k in
    check_bool
      (Printf.sprintf "k=%d within jitter band" k)
      true
      (d1 >= base *. 0.75 -. 1e-12 && d1 <= base *. 1.25 +. 1e-12)
  done;
  let differs =
    List.exists
      (fun k ->
        Fault.Retry.backoff_delay ~jitter:0.5 ~jitter_seed:1L k
        <> Fault.Retry.backoff_delay ~jitter:0.5 ~jitter_seed:2L k)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check_bool "seeds decorrelate" true differs;
  Alcotest.check_raises "jitter out of range"
    (Invalid_argument "Retry.backoff_delay: jitter must be in [0, 1]")
    (fun () -> ignore (Fault.Retry.backoff_delay ~jitter:1.5 0))

let retry_budget_zero_never_retries () =
  let count = ref 0 in
  (try
     Fault.Retry.with_backoff ~attempts:5 ~budget_s:0.
       ~retryable:(fun _ -> true)
       ~on_retry:(fun _ _ -> ())
       (fun _ ->
         incr count;
         failwith "transient")
   with Failure _ -> ());
  check_int "exactly one attempt under a zero budget" 1 !count

let retry_budget_allows_recovery () =
  let count = ref 0 in
  let v =
    Fault.Retry.with_backoff ~attempts:5 ~budget_s:5.
      ~retryable:(fun _ -> true)
      ~on_retry:(fun _ _ -> ())
      (fun _ ->
        incr count;
        if !count < 3 then failwith "transient" else !count)
  in
  check_int "recovered on third attempt" 3 v;
  Alcotest.check_raises "negative budget refused"
    (Invalid_argument "Retry.with_backoff: negative budget")
    (fun () ->
      Fault.Retry.with_backoff ~budget_s:(-1.)
        ~retryable:(fun _ -> true)
        ~on_retry:(fun _ _ -> ())
        (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Fault.Shutdown: the register-during-drain race *)

let shutdown_register_after_drain () =
  Fault.Shutdown.reset ();
  Fun.protect ~finally:Fault.Shutdown.reset (fun () ->
      let early = ref 0 and late = ref 0 in
      Fault.Shutdown.on_shutdown (fun () -> incr early);
      Fault.Shutdown.run_hooks ();
      check_int "early hook ran" 1 !early;
      (* The race: a thread registers while/after the drain runs the
         hooks.  The late hook must still run — immediately, exactly
         once — not be silently dropped. *)
      Fault.Shutdown.on_shutdown (fun () -> incr late);
      check_int "late hook ran immediately" 1 !late;
      Fault.Shutdown.run_hooks ();
      check_int "early hook not re-run" 1 !early;
      check_int "late hook not re-run" 1 !late)

let shutdown_hooks_lifo_once () =
  Fault.Shutdown.reset ();
  Fun.protect ~finally:Fault.Shutdown.reset (fun () ->
      let order = ref [] in
      Fault.Shutdown.on_shutdown (fun () -> order := 1 :: !order);
      Fault.Shutdown.on_shutdown (fun () -> order := 2 :: !order);
      Fault.Shutdown.run_hooks ();
      Fault.Shutdown.run_hooks ();
      Alcotest.(check (list int)) "LIFO, exactly once" [ 1; 2 ] !order)

(* ------------------------------------------------------------------ *)
(* Store.Objects: concurrent quarantine-then-repopulate *)

let store_concurrent_quarantine () =
  with_tmp_dir (fun dir ->
      let s = Objects.open_ ~dir in
      let key = "serve.row/test" and payload = "quarantine-me-please" in
      let entry = Objects.put s ~key ~meta:[] payload in
      flip_byte (Objects.object_path s ~digest:entry.Objects.digest) 3;
      (* Two domains race the corrupted read: both must see a miss,
         and the rename race must leave exactly one quarantined file. *)
      let reader () = Objects.get s ~key in
      let d1 = Domain.spawn reader and d2 = Domain.spawn reader in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      check_bool "first racer misses" true (r1 = None);
      check_bool "second racer misses" true (r2 = None);
      check_int "no double-quarantine" 1 (count_files (Objects.quarantine_dir s));
      (* Repopulate and race again: both readers recover the bytes. *)
      ignore (Objects.put s ~key ~meta:[] payload);
      let d1 = Domain.spawn reader and d2 = Domain.spawn reader in
      let r1 = Domain.join d1 and r2 = Domain.join d2 in
      (match (r1, r2) with
      | Some (b1, _), Some (b2, _) ->
        check_string "first recovers" payload b1;
        check_string "second recovers" payload b2
      | _ -> Alcotest.fail "repopulated object must serve both readers");
      check_int "still one quarantined file" 1
        (count_files (Objects.quarantine_dir s)))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "serve.proto",
      [
        case "request round-trip" request_roundtrip;
        case "response round-trip" response_roundtrip;
        case "error codes round-trip" error_code_roundtrip;
        case "garbage rejected" decode_rejects_garbage;
        case "render deterministic" render_deterministic;
        case "frame round-trip" frame_roundtrip;
        case "frame eof" frame_eof;
        case "frame timeout (slow loris)" frame_timeout;
        case "frame oversized" frame_oversized;
        case "query truncation vectors" query_truncation_vectors;
        qcase ~count:200 "request encode∘decode = id" gen_request
          prop_request_roundtrip;
        qcase ~count:200 "response encode∘decode = id" gen_response
          prop_response_roundtrip;
        qcase ~count:200 "no request prefix parses" gen_request
          prop_request_prefix_rejected;
        qcase ~count:200 "no response prefix parses" gen_response
          prop_response_prefix_rejected;
        qcase ~count:200 "peek agrees with the decoder" gen_request
          prop_peek_agrees;
      ] );
    ( "serve.corpus",
      [
        case "spec defaults" spec_defaults;
        case "spec errors" spec_errors;
        case "degraded load" degraded_load;
        case "all failed is unhealthy" all_failed_unhealthy;
        case "backend row identity" backend_row_identity;
      ] );
    ( "serve.engine",
      [
        case "answers correct rows" engine_answers_correct_rows;
        case "rejects bad submissions" engine_rejects_bad_submissions;
        case "sheds at the admission bound" engine_sheds_at_bound;
        case "deadline expiry" engine_deadline_expires;
        case "drain flushes then refuses" engine_drain_flushes_then_refuses;
        case "cache and dedupe" engine_cache_and_dedupe;
        case "store round-trip" engine_store_round_trip;
        case "store corruption recovers" engine_store_corruption_recovers;
        case "LRU touch-on-hit" engine_lru_touch_on_hit;
      ] );
    ( "serve.shard",
      [
        case "consistent-hash partition" corpus_shard_partition;
        case "shard_of range and determinism" shard_of_range;
        case "stats text round-trip" router_stats_text_roundtrip;
        case "LIST merge" router_merge_list_rows;
        case "snapshot health" router_snapshot_health;
      ] );
    ( "serve.server",
      [
        case "answers queries" server_answers_queries;
        case "drain publishes ledger" server_drain_publishes_ledger;
        case "ledger contents" server_ledger_contents;
        case "backend byte-identical sessions" server_backend_byte_identical;
      ] );
    ( "serve.retry",
      [
        case "legacy delays exact" backoff_legacy_delays;
        case "jitter deterministic and bounded" backoff_jitter_deterministic;
        case "zero budget never retries" retry_budget_zero_never_retries;
        case "budget allows recovery" retry_budget_allows_recovery;
      ] );
    ( "serve.shutdown",
      [
        case "register after drain runs immediately" shutdown_register_after_drain;
        case "hooks LIFO exactly once" shutdown_hooks_lifo_once;
      ] );
    ( "serve.store",
      [ case "concurrent quarantine then repopulate" store_concurrent_quarantine ] );
  ]
