(* Implicit-backend suite: arithmetic shapes against their CSR twins,
   the QCheck equivalence oracle (derived-label instances byte-identical
   to their materialized twins across Foremost / reachability /
   diameter), prefix-stream completeness, boundary cases, the
   clear-error contract of the whole-stream accessors, and the
   workspace sizing contract (no n×k arrival matrix on implicit
   networks). *)

module Graph = Sgraph.Graph
module Gen = Sgraph.Gen
module Rng = Prng.Rng
open Temporal
open Helpers

(* ------------------------------------------------------------------ *)
(* Topology: implicit shapes = CSR twins, observable by every accessor
   a kernel uses. *)

let neighbors_of iter g v =
  let acc = ref [] in
  iter g v (fun e w -> acc := (e, w) :: !acc);
  List.rev !acc

let check_same_graph name dense implicit =
  check_int (name ^ ": n") (Graph.n dense) (Graph.n implicit);
  check_int (name ^ ": m") (Graph.m dense) (Graph.m implicit);
  check_bool (name ^ ": kind") true (Graph.kind dense = Graph.kind implicit);
  check_bool (name ^ ": implicit flag") true (Graph.is_implicit implicit);
  for e = 0 to Graph.m dense - 1 do
    check_bool
      (Printf.sprintf "%s: endpoints of edge %d" name e)
      true
      (Graph.edge_endpoints dense e = Graph.edge_endpoints implicit e)
  done;
  for v = 0 to Graph.n dense - 1 do
    check_bool
      (Printf.sprintf "%s: out arcs of %d" name v)
      true
      (neighbors_of Graph.iter_out dense v
      = neighbors_of Graph.iter_out implicit v);
    check_bool
      (Printf.sprintf "%s: in arcs of %d" name v)
      true
      (neighbors_of Graph.iter_in dense v
      = neighbors_of Graph.iter_in implicit v)
  done;
  for u = 0 to Graph.n dense - 1 do
    for v = 0 to Graph.n dense - 1 do
      check_int_option
        (Printf.sprintf "%s: find_edge %d %d" name u v)
        (Graph.find_edge dense u v)
        (Graph.find_edge implicit u v)
    done
  done;
  let edges g =
    let acc = ref [] in
    Graph.iter_edges g (fun e u v -> acc := (e, u, v) :: !acc);
    List.rev !acc
  in
  check_bool (name ^ ": iter_edges") true (edges dense = edges implicit);
  let rd = Graph.reverse dense and ri = Graph.reverse implicit in
  for v = 0 to Graph.n dense - 1 do
    check_bool
      (Printf.sprintf "%s: reversed out arcs of %d" name v)
      true
      (neighbors_of Graph.iter_out rd v = neighbors_of Graph.iter_out ri v)
  done

let shapes_match_csr () =
  check_same_graph "directed clique" (Gen.clique Directed 7)
    (Gen.clique_implicit Directed 7);
  check_same_graph "undirected clique" (Gen.clique Undirected 6)
    (Gen.clique_implicit Undirected 6);
  check_same_graph "star" (Gen.star 9) (Gen.star_implicit 9);
  check_same_graph "grid" (Gen.grid 3 4) (Gen.grid_implicit 3 4);
  check_same_graph "degenerate grid row" (Gen.grid 1 5) (Gen.grid_implicit 1 5);
  check_same_graph "single vertex clique" (Gen.clique Directed 1)
    (Gen.clique_implicit Directed 1)

(* ------------------------------------------------------------------ *)
(* The equivalence oracle.  A derived instance and its materialized
   twin must be indistinguishable: same per-edge labels, same Foremost
   arrivals from every source and start time, same temporal
   reachability, same diameter (batched on the dense twin, the scalar
   chunked path on the implicit one — so this also pins scalar =
   batched). *)

let gen_derived =
  QCheck2.Gen.(
    let* n = int_range 2 16 in
    let* seed = int_range 0 1_000_000 in
    let* a = int_range 1 12 in
    let* r = int_range 1 3 in
    let* shape = int_range 0 3 in
    return (n, seed, a, r, shape))

let print_derived (n, seed, a, r, shape) =
  Printf.sprintf "(n=%d, seed=%d, a=%d, r=%d, shape=%d)" n seed a r shape

let graph_of_shape ~n ~seed = function
  | 0 -> random_graph ~n ~seed
  | 1 -> Gen.clique_implicit Directed n
  | 2 -> Gen.star_implicit n
  | _ -> Gen.grid_implicit 2 ((n + 1) / 2)

let derived_pair (n, seed, a, r, shape) =
  let g = graph_of_shape ~n ~seed shape in
  let net = Tgraph.of_derived g ~a ~seed:(Int64.of_int seed) ~r in
  (net, Tgraph.materialize net)

let edge_labels net e =
  let acc = ref [] in
  Tgraph.iter_edge_labels net e (fun l -> acc := l :: !acc);
  List.rev !acc

let labels_agree net twin =
  let ok = ref true in
  for e = 0 to Graph.m (Tgraph.graph net) - 1 do
    if edge_labels net e <> edge_labels twin e then ok := false;
    if Tgraph.edge_label_size net e <> Tgraph.edge_label_size twin e then
      ok := false;
    for x = 0 to Tgraph.lifetime net + 1 do
      if Tgraph.edge_has_label net e x <> Tgraph.edge_has_label twin e x then
        ok := false;
      if
        Tgraph.edge_next_label_after net e x
        <> Tgraph.edge_next_label_after twin e x
      then ok := false
    done
  done;
  !ok

let oracle_labels =
  qcase ~count:120 ~print:print_derived
    "derived labels = materialized twin (scalar queries)" gen_derived
    (fun params ->
      let net, twin = derived_pair params in
      labels_agree net twin)

let arrivals_agree ?(start_time = 1) net twin =
  let n = Tgraph.n net in
  let ok = ref true in
  for s = 0 to n - 1 do
    let a1 = Foremost.arrival_array (Foremost.run ~start_time net s) in
    let a2 = Foremost.arrival_array (Foremost.run ~start_time twin s) in
    if a1 <> a2 then ok := false
  done;
  !ok

let oracle_foremost =
  qcase ~count:120 ~print:print_derived
    "derived Foremost arrivals = materialized twin" gen_derived (fun params ->
      let net, twin = derived_pair params in
      arrivals_agree net twin
      (* Start at the lifetime (last usable step) and past it (nothing
         usable): the chunked prefix scan must agree on both horizons. *)
      && arrivals_agree ~start_time:(Tgraph.lifetime net) net twin
      && arrivals_agree ~start_time:(Tgraph.lifetime net + 1) net twin)

let oracle_consumers =
  qcase ~count:80 ~print:print_derived
    "derived treach / diameter = materialized twin" gen_derived (fun params ->
      let net, twin = derived_pair params in
      Reachability.treach net = Reachability.treach twin
      && Reachability.reachable_pair_count net
         = Reachability.reachable_pair_count twin
      && Distance.instance_diameter net = Distance.instance_diameter twin
      && Distance.instance_diameter net = Distance.instance_diameter_scalar net)

let oracle_flooding =
  qcase ~count:60 ~print:print_derived
    "derived flooding broadcast = materialized twin" gen_derived (fun params ->
      let net, twin = derived_pair params in
      let ok = ref true in
      for s = 0 to Tgraph.n net - 1 do
        if Flooding.broadcast_time net s <> Flooding.broadcast_time twin s then
          ok := false
      done;
      !ok)

(* Forcing the prefix to completion must reproduce the dense stream
   byte for byte — arrays, not just statistics. *)
let oracle_full_prefix =
  qcase ~count:80 ~print:print_derived
    "completed prefix = materialized stream arrays" gen_derived (fun params ->
      let net, twin = derived_pair params in
      let rec force () =
        if not (Tgraph.stream_complete net) then begin
          ignore (Tgraph.stream_extend net ~past:(Tgraph.stream_prefix_bound net));
          force ()
        end
      in
      force ();
      Tgraph.stream_prefix net = Tgraph.stream twin
      && Tgraph.stream_prefix_bound net >= Tgraph.lifetime net)

(* ------------------------------------------------------------------ *)
(* Assignment constructors: the implicit uniform families must
   materialize into networks the dense accessors accept, with labels
   inside {1..a} and exactly r rolls per edge (counted with
   multiplicity collapsed — the support size is <= r). *)

let assignment_constructors () =
  let g = Gen.clique Directed 6 in
  let net = Assignment.uniform_single_implicit (rng ()) g ~a:6 in
  check_bool "single: implicit" true (Tgraph.is_implicit net);
  let twin = Tgraph.materialize net in
  check_bool "single: twin dense" false (Tgraph.is_implicit twin);
  check_bool "single: labels agree" true (labels_agree net twin);
  check_int "single: one label per edge" (Graph.m g) (Tgraph.label_count net);
  let multi = Assignment.uniform_multi_implicit (rng ()) g ~a:4 ~r:3 in
  let mtwin = Tgraph.materialize multi in
  check_bool "multi: labels agree" true (labels_agree multi mtwin);
  Graph.iter_edges g (fun e _ _ ->
      let ls = edge_labels multi e in
      check_bool "multi: support <= r" true (List.length ls <= 3);
      List.iter
        (fun l -> check_bool "multi: label in 1..a" true (l >= 1 && l <= 4))
        ls);
  Alcotest.check_raises "multi: r = 0 rejected"
    (Invalid_argument "Assignment.uniform_multi_implicit: r must be >= 1")
    (fun () -> ignore (Assignment.uniform_multi_implicit (rng ()) g ~a:4 ~r:0))

(* Boundary instances the generators rarely hit squarely. *)
let boundary_cases () =
  (* r > a: supports collapse, never exceed the lifetime. *)
  let g = Gen.clique Directed 4 in
  let net = Tgraph.of_derived g ~a:2 ~seed:77L ~r:6 in
  let twin = Tgraph.materialize net in
  check_bool "r > a: labels agree" true (labels_agree net twin);
  check_bool "r > a: diameters agree" true
    (Distance.instance_diameter net = Distance.instance_diameter twin);
  (* a = 1: every edge alive exactly at time 1. *)
  let one = Tgraph.of_derived g ~a:1 ~seed:5L ~r:1 in
  Graph.iter_edges g (fun e _ _ ->
      check_bool "a = 1: label is 1" true (Tgraph.edge_has_label one e 1);
      check_int "a = 1: nothing after 1" max_int
        (Tgraph.edge_next_label_after one e 1));
  check_int_option "a = 1: clique diameter 1" (Some 1)
    (Distance.instance_diameter one);
  (* n = 1: empty edge set, diameter of the single vertex. *)
  let solo =
    Tgraph.of_derived (Gen.clique_implicit Directed 1) ~a:3 ~seed:9L ~r:1
  in
  check_int_option "n = 1: diameter" (Distance.instance_diameter
      (Tgraph.materialize solo))
    (Distance.instance_diameter solo);
  check_bool "n = 1: treach" true (Reachability.treach solo);
  (* Constructor argument checks. *)
  Alcotest.check_raises "a = 0 rejected"
    (Invalid_argument "Implicit.Labels.make: need a >= 1") (fun () ->
      ignore (Tgraph.of_derived g ~a:0 ~seed:1L ~r:1));
  Alcotest.check_raises "r = 0 rejected"
    (Invalid_argument "Implicit.Labels.make: need r >= 1") (fun () ->
      ignore (Tgraph.of_derived g ~a:3 ~seed:1L ~r:0))

(* Whole-stream accessors refuse implicit networks with an error that
   names the fix. *)
let whole_stream_errors () =
  let net =
    Tgraph.of_derived (Gen.clique_implicit Directed 5) ~a:5 ~seed:3L ~r:1
  in
  let expect_materialize_error name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
      check_bool (name ^ ": names the accessor") true (contains msg name);
      check_bool (name ^ ": names materialize") true
        (contains msg "materialize")
  in
  expect_materialize_error "stream" (fun () -> ignore (Tgraph.stream net));
  expect_materialize_error "time_edge_count" (fun () ->
      ignore (Tgraph.time_edge_count net));
  expect_materialize_error "iter_time_edges" (fun () ->
      Tgraph.iter_time_edges net (fun ~src:_ ~dst:_ ~label:_ ~edge:_ -> ()))

(* Determinism and site-independence of the label hash: rolls depend
   only on (seed, edge, k) — never on query order — and distinct seeds
   give distinct labellings somewhere on a big enough instance. *)
let site_independence () =
  let d = Implicit.Labels.make ~seed:42L ~a:10 ~r:3 in
  let first = Array.init 30 (fun i -> Implicit.Labels.roll d ~edge:(i / 3) ~k:(i mod 3)) in
  (* Query backwards, interleaved with unrelated probes. *)
  for i = 29 downto 0 do
    ignore (Implicit.Labels.has d ~edge:((i * 7) mod 10) ((i mod 10) + 1));
    check_int
      (Printf.sprintf "roll (%d, %d) stable" (i / 3) (i mod 3))
      first.(i)
      (Implicit.Labels.roll d ~edge:(i / 3) ~k:(i mod 3))
  done;
  let d' = Implicit.Labels.make ~seed:43L ~a:10 ~r:3 in
  let differs = ref false in
  for e = 0 to 9 do
    for k = 0 to 2 do
      if Implicit.Labels.roll d ~edge:e ~k <> Implicit.Labels.roll d' ~edge:e ~k
      then differs := true
    done
  done;
  check_bool "distinct seeds differ" true !differs;
  Array.iter
    (fun l -> check_bool "rolls inside 1..a" true (l >= 1 && l <= 10))
    first

(* The workspace sizing contract of the implicit backend: the
   arrival-free entry point never grows the n×lanes arrival matrix, so
   temporal kernel scratch stays O(n) words on derived instances. *)
let workspace_planes_sizing () =
  let n = 1_000_000 in
  let ws = Workspace.get_batch_planes ~n in
  check_bool "bitset planes sized" true (Array.length ws.lane_reached >= n);
  check_bool "delta plane sized" true (Array.length ws.lane_delta >= n);
  check_bool "no n*lanes arrival matrix" true
    (Array.length ws.lane_arrival < n);
  (* And the arrival-free consumers really do run on an instance of
     that character without touching the matrix. *)
  let net =
    Tgraph.of_derived (Gen.clique_implicit Directed 128) ~a:128 ~seed:11L ~r:1
  in
  ignore (Distance.instance_diameter net);
  let ws = Workspace.get_batch_planes ~n in
  check_bool "arrival matrix still un-grown" true
    (Array.length ws.lane_arrival < n)

let suites =
  [
    ( "implicit",
      [
        case "arithmetic shapes = CSR twins" shapes_match_csr;
        oracle_labels;
        oracle_foremost;
        oracle_consumers;
        oracle_flooding;
        oracle_full_prefix;
        case "implicit assignment constructors" assignment_constructors;
        case "boundary cases" boundary_cases;
        case "whole-stream accessors refuse implicit" whole_stream_errors;
        case "label hash site-independent" site_independence;
        case "planes workspace stays O(n) words" workspace_planes_sizing;
      ] );
  ]
