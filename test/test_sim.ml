(* Tests for the simulation harness: runner, estimators, experiments. *)

open Helpers
module Rng = Prng.Rng
module Runner = Sim.Runner
module Estimators = Sim.Estimators
module Experiments = Sim.Experiments

(* --------------------------------------------------------------- *)
(* Runner *)

let runner_foreach_counts () =
  let calls = ref [] in
  Runner.foreach (rng ()) ~trials:5 (fun i _ -> calls := i :: !calls);
  Alcotest.(check (list int)) "indices in order" [ 0; 1; 2; 3; 4 ]
    (List.rev !calls)

let runner_collect () =
  let values = Runner.collect (rng ()) ~trials:4 (fun trial_rng -> Rng.int trial_rng 100) in
  check_int "four values" 4 (List.length values)

let runner_reproducible () =
  let run () =
    Runner.collect (Rng.create 9) ~trials:6 (fun trial_rng -> Rng.bits64 trial_rng)
  in
  Alcotest.(check (list int64)) "identical across runs" (run ()) (run ())

let runner_trial_isolation () =
  (* Trial i's stream does not depend on how much trial i-1 consumed. *)
  let consume_lots trial_rng =
    for _ = 1 to 100 do
      ignore (Rng.bits64 trial_rng)
    done
  in
  let second_of consume =
    let root = Rng.create 4 in
    let first = Rng.split root in
    if consume then consume_lots first else ignore (Rng.bits64 first);
    Rng.bits64 (Rng.split root)
  in
  Alcotest.(check int64) "second trial unaffected" (second_of false)
    (second_of true)

let runner_summarize () =
  let summary = Runner.summarize (rng ()) ~trials:50 (fun trial_rng -> Rng.float trial_rng) in
  check_int "count" 50 (Stats.Summary.count summary);
  let mean = Stats.Summary.mean summary in
  check_bool "uniform mean plausible" true (mean > 0.2 && mean < 0.8)

let runner_count () =
  check_int "all true" 10 (Runner.count (rng ()) ~trials:10 (fun _ -> true));
  check_int "all false" 0 (Runner.count (rng ()) ~trials:10 (fun _ -> false))

let runner_map_ordered () =
  Alcotest.(check (array int))
    "slot i holds trial i"
    (Array.init 9 (fun i -> i * 2))
    (Runner.map (rng ()) ~trials:9 (fun i _ -> i * 2))

let runner_map_matches_collect () =
  let via_map =
    Array.to_list (Runner.map (Rng.create 5) ~trials:12 (fun _ r -> Rng.bits64 r))
  in
  let via_collect = Runner.collect (Rng.create 5) ~trials:12 Rng.bits64 in
  Alcotest.(check (list int64)) "same streams, same order" via_collect via_map

let with_jobs jobs f =
  let before = Exec.Config.jobs () in
  Exec.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_jobs before) f

let runner_map_jobs_invariant () =
  let run () = Runner.map (Rng.create 31) ~trials:40 (fun _ r -> Rng.bits64 r) in
  let seq = with_jobs 1 run in
  let par = with_jobs 4 run in
  Alcotest.(check (array int64)) "jobs 1 = jobs 4" seq par

(* --------------------------------------------------------------- *)
(* Estimators *)

let estimator_clique_diameter () =
  let stats = Estimators.clique_temporal_diameter (rng ()) ~n:16 ~a:16 ~trials:10 in
  check_int "trials" 10 stats.trials;
  check_int "clique never disconnects" 0 stats.disconnected;
  check_int "all trials measured" 10 (Stats.Summary.count stats.summary);
  let mean = Stats.Summary.mean stats.summary in
  check_bool "diameter within (1, n]" true (mean > 1. && mean <= 16.)

let estimator_diameter_records_disconnection () =
  (* A path with one label per edge essentially never preserves full
     reachability: expect disconnected instances. *)
  let g = Sgraph.Gen.path 8 in
  let stats = Estimators.temporal_diameter (rng ()) g ~a:8 ~r:1 ~trials:10 in
  check_bool "disconnections observed" true (stats.disconnected > 0);
  check_int "measured + disconnected = trials" 10
    (Stats.Summary.count stats.summary + stats.disconnected)

let estimator_flooding () =
  let g = Sgraph.Gen.clique Directed 16 in
  let summary, incomplete = Estimators.flooding_time (rng ()) g ~a:16 ~r:1 ~trials:8 in
  check_int "complete on the clique" 0 incomplete;
  check_int "all measured" 8 (Stats.Summary.count summary)

let estimator_expansion () =
  let params = Temporal.Expansion.default_params ~n:64 () in
  let stats =
    Estimators.expansion (rng ()) ~n:64 ~params ~instances:3 ~pairs_per_instance:5
  in
  check_int "attempts" 15 stats.attempts;
  check_bool "rate in [0,1]" true
    (stats.success_rate >= 0. && stats.success_rate <= 1.);
  check_int "horizon matches params" (Temporal.Expansion.horizon params)
    stats.horizon

let estimator_gnp_connectivity () =
  check_float "p=1 connected" 1.
    (Estimators.gnp_connectivity (rng ()) ~n:12 ~p:1. ~trials:5);
  check_float "p=0 disconnected" 0.
    (Estimators.gnp_connectivity (rng ()) ~n:12 ~p:0. ~trials:5)

(* --------------------------------------------------------------- *)
(* Family *)

let family_roundtrip () =
  List.iter
    (fun name ->
      (* "gnp" is an alias for "gnp:2" and "gnp:<c>" is help text. *)
      if name <> "gnp:<c>" && name <> "gnp" then
        match Sim.Family.of_string name with
        | Ok f -> Alcotest.(check string) name name (Sim.Family.to_string f)
        | Error (`Msg m) -> Alcotest.fail m)
    Sim.Family.names;
  (match Sim.Family.of_string "gnp" with
  | Ok f -> Alcotest.(check string) "gnp alias" "gnp:2" (Sim.Family.to_string f)
  | Error (`Msg m) -> Alcotest.fail m)

let family_gnp_coefficient () =
  (match Sim.Family.of_string "gnp:3.5" with
  | Ok (Gnp c) -> check_float "coefficient" 3.5 c
  | _ -> Alcotest.fail "gnp:3.5 should parse");
  check_bool "bad coefficient rejected" true
    (Result.is_error (Sim.Family.of_string "gnp:zero"));
  check_bool "unknown family rejected" true
    (Result.is_error (Sim.Family.of_string "mobius"))

let family_builds () =
  let g = rng () in
  List.iter
    (fun name ->
      if name <> "gnp:<c>" then
        match Sim.Family.of_string name with
        | Ok f ->
          let graph = Sim.Family.build f g ~n:16 in
          check_bool (name ^ " nonempty") true (Sgraph.Graph.n graph >= 4)
        | Error (`Msg m) -> Alcotest.fail m)
    Sim.Family.names;
  check_int "hypercube rounds to power of two" 16
    (Sgraph.Graph.n (Sim.Family.build Hypercube g ~n:16))

(* --------------------------------------------------------------- *)
(* Experiments registry *)

let registry_ids_unique () =
  let ids = List.map (fun (e : Experiments.t) -> e.id) Experiments.all in
  check_int "twenty-three experiments" 23 (List.length ids);
  check_int "ids unique" 23 (List.length (List.sort_uniq compare ids))

let registry_find () =
  (match Experiments.find "e3" with
  | Some e -> check_bool "found e3" true (e.id = "e3")
  | None -> Alcotest.fail "e3 must exist");
  (match Experiments.find "E5" with
  | Some e -> check_bool "case-insensitive" true (e.id = "e5")
  | None -> Alcotest.fail "E5 must resolve");
  (match Experiments.find "exp12" with
  | Some e -> check_bool "decorated spelling" true (e.id = "e12")
  | None -> Alcotest.fail "exp12 must resolve to e12");
  check_bool "unknown id" true (Experiments.find "e99" = None);
  check_bool "no digits, no guess" true (Experiments.find "clique" = None)

(* Every experiment runs at quick scale and produces populated tables.
   This is the suite's end-to-end smoke over the entire stack. *)
let experiment_cases =
  List.map
    (fun (e : Experiments.t) ->
      case ("quick run " ^ e.id) (fun () ->
          let outcome = e.run ~quick:true ~seed:17 in
          check_bool "has tables" true (outcome.tables <> []);
          List.iter
            (fun table ->
              check_bool
                (Stats.Table.title table ^ " has rows")
                true
                (Stats.Table.rows table <> []))
            outcome.tables;
          check_bool "renders" true
            (String.length (Sim.Outcome.render outcome) > 0)))
    Experiments.all

let experiments_deterministic () =
  let render seed =
    Sim.Outcome.render ((List.hd Experiments.all).run ~quick:true ~seed)
  in
  Alcotest.(check string) "same seed, same output" (render 3) (render 3);
  check_bool "different seed, different output" true (render 3 <> render 4)

(* The PR-level determinism contract: a representative experiment's
   rendered outcome AND its CSV export are byte-identical whether the
   trials run on one domain or four. *)
let read_file path = In_channel.with_open_bin path In_channel.input_all

let experiments_parallel_determinism () =
  let exp = Option.get (Experiments.find "e6") in
  let run_at jobs =
    with_jobs jobs (fun () ->
        let outcome = exp.run ~quick:true ~seed:17 in
        let dir = Filename.temp_file "ephemeral_jobs" "" in
        Sys.remove dir;
        let csvs = Sim.Report.save_csv ~dir exp outcome in
        let csv_bytes = String.concat "\x00" (List.map read_file csvs) in
        List.iter Sys.remove csvs;
        Sys.rmdir dir;
        (Sim.Outcome.render outcome, csv_bytes))
  in
  let render1, csv1 = run_at 1 in
  let render4, csv4 = run_at 4 in
  Alcotest.(check string) "rendered outcome identical at -j1/-j4" render1 render4;
  Alcotest.(check string) "CSV bytes identical at -j1/-j4" csv1 csv4

(* Qualitative shape assertions at quick scale. *)
let e1_shape () =
  let outcome = (Option.get (Experiments.find "e1")).run ~quick:true ~seed:5 in
  let table = List.hd outcome.tables in
  let ratios = Stats.Table.column_floats table "TD/ln n" in
  List.iter
    (fun ratio ->
      check_bool
        (Printf.sprintf "TD/ln n = %.2f within [1.5, 7]" ratio)
        true
        (ratio > 1.5 && ratio < 7.))
    ratios;
  let disconn = Stats.Table.column_floats table "disconn" in
  List.iter (fun d -> check_float "no disconnections" 0. d) disconn

let e6_shape () =
  let outcome = (Option.get (Experiments.find "e6")).run ~quick:true ~seed:5 in
  let table = List.hd outcome.tables in
  match Stats.Table.column_floats table "n=64" with
  | low :: rest ->
    let high = List.nth rest (List.length rest - 1) in
    check_bool
      (Printf.sprintf "connectivity steps up: %.2f -> %.2f" low high)
      true
      (low < 0.3 && high > 0.7)
  | [] -> Alcotest.fail "expected rows"

(* --------------------------------------------------------------- *)
(* Outcome and report persistence *)

let outcome_render_sections () =
  let table = Stats.Table.create ~title:"T" ~columns:[ "c" ] in
  Stats.Table.add_row table [ Int 1 ];
  let outcome = Sim.Outcome.make ~notes:[ "a note" ] ~plots:[ "PLOT" ] [ table ] in
  let s = Sim.Outcome.render outcome in
  check_bool "table" true (contains s "T");
  check_bool "note" true (contains s "note: a note");
  check_bool "plot" true (contains s "PLOT")

let report_persistence () =
  let dir = Filename.temp_file "ephemeral" "" in
  Sys.remove dir;
  let exp = List.hd Experiments.all in
  let outcome = exp.run ~quick:true ~seed:2 in
  let csvs = Sim.Report.save_csv ~dir exp outcome in
  check_bool "csv files written" true (csvs <> []);
  List.iter (fun path -> check_bool path true (Sys.file_exists path)) csvs;
  let md = Sim.Report.save_markdown ~dir exp outcome in
  check_bool "markdown written" true (Sys.file_exists md);
  (* Clean up. *)
  List.iter Sys.remove csvs;
  Sys.remove md;
  Sys.rmdir dir

(* --------------------------------------------------------------- *)
(* Run ledger *)

let with_obs f =
  Obs.Control.set_enabled true;
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.set_enabled false;
      Obs.Span.reset ();
      Obs.Metrics.reset ())
    f

(* Extract a top-level ["key": {...}] object by brace counting — span
   paths, ids and fingerprints never contain braces. *)
let extract doc key =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle in
  let rec find i =
    if i + nl > String.length doc then Alcotest.failf "ledger lacks %s" key
    else if String.sub doc i nl = needle then i + nl
    else find (i + 1)
  in
  let start = find 0 in
  let depth = ref 0 and stop = ref start in
  (try
     for i = start to String.length doc - 1 do
       match doc.[i] with
       | '{' -> incr depth
       | '}' ->
         decr depth;
         if !depth = 0 then begin
           stop := i;
           raise Exit
         end
       | _ -> ()
     done;
     Alcotest.failf "unbalanced %s object" key
   with Exit -> ());
  String.sub doc start (!stop - start + 1)

let ledger_at jobs =
  with_obs (fun () ->
      with_jobs jobs (fun () ->
          Sim.Supervise.configure Sim.Supervise.default;
          let exp = Option.get (Experiments.find "e6") in
          ignore (exp.run ~quick:true ~seed:17 : Sim.Outcome.t);
          Sim.Ledger.build ~seed:17 ~quick:true ~backend:(Sim.Backend.tag ())
            ~jobs ~experiments:[ "e6" ] ~status:"ok" ~wall_ns:123L))

(* The ledger's headline contract: the "deterministic" object is
   byte-identical at any job count, and the volatile object carries the
   same instrument keys whether or not scheduling ever touched them. *)
let ledger_schema_stable_across_jobs () =
  let a = ledger_at 1 and b = ledger_at 4 in
  check_bool "schema header" true
    (contains a {|"schema":"ephemeral-run-ledger"|});
  Alcotest.(check string) "deterministic section identical at -j1/-j4"
    (extract a "deterministic") (extract b "deterministic");
  List.iter
    (fun key ->
      check_bool (key ^ " present at -j1") true (contains a ("\"" ^ key ^ "\""));
      check_bool (key ^ " present at -j4") true (contains b ("\"" ^ key ^ "\"")))
    [
      "kernel.workspace_growths"; "pool.tasks"; "pool.task_ms";
      "pool.queue_depth"; "store.hit_ms"; "store.miss_ms";
      "supervise.retry_ms"; "obs.sink_dropped";
    ]

let ledger_write_atomic () =
  with_obs (fun () ->
      let dir = Filename.temp_file "ledger" "" in
      Sys.remove dir;
      Sim.Report.ensure_dir dir;
      let path = Filename.concat dir "run.json" in
      Sim.Ledger.write ~path ~seed:1 ~quick:true ~backend:(Sim.Backend.tag ())
        ~jobs:1 ~experiments:[ "e1" ] ~status:"ok" ~wall_ns:0L;
      check_bool "ledger published" true (Sys.file_exists path);
      check_bool "no tmp residue" false (Sys.file_exists (path ^ ".tmp"));
      let doc = read_file path in
      check_bool "one newline-terminated document" true
        (String.length doc > 0 && doc.[String.length doc - 1] = '\n');
      check_bool "fingerprint recorded" true (contains doc {|"fingerprint":|});
      check_bool "experiments recorded" true (contains doc {|["e1"]|});
      Sys.remove path;
      Sys.rmdir dir)

let suites =
  [
    ( "sim.runner",
      [
        case "foreach" runner_foreach_counts;
        case "collect" runner_collect;
        case "reproducible" runner_reproducible;
        case "trial isolation" runner_trial_isolation;
        case "summarize" runner_summarize;
        case "count" runner_count;
        case "map ordered" runner_map_ordered;
        case "map matches collect" runner_map_matches_collect;
        case "map invariant across job counts" runner_map_jobs_invariant;
      ] );
    ( "sim.estimators",
      [
        case "clique diameter" estimator_clique_diameter;
        case "diameter records disconnection" estimator_diameter_records_disconnection;
        case "flooding" estimator_flooding;
        case "expansion" estimator_expansion;
        case "gnp connectivity" estimator_gnp_connectivity;
      ] );
    ( "sim.family",
      [
        case "roundtrip" family_roundtrip;
        case "gnp coefficient" family_gnp_coefficient;
        case "builds" family_builds;
      ] );
    ( "sim.experiments",
      [ case "registry unique" registry_ids_unique; case "find" registry_find ]
      @ experiment_cases
      @ [
          case "deterministic" experiments_deterministic;
          case "parallel determinism (-j1 = -j4)"
            experiments_parallel_determinism;
          case "e1 shape" e1_shape;
          case "e6 shape" e6_shape;
        ] );
    ( "sim.report",
      [
        case "outcome render" outcome_render_sections;
        case "persistence" report_persistence;
      ] );
    ( "sim.ledger",
      [
        case "deterministic section stable across jobs"
          ledger_schema_stable_across_jobs;
        case "atomic publish" ledger_write_atomic;
      ] );
  ]
