(* Tests for the fault-injection plane (lib/fault) and the supervised
   execution it exercises: plan determinism, spec parsing, bounded
   retries, shutdown hooks, supervised trials, store IO hardening and
   pool poisoning.

   Process-wide state discipline: every case that arms a plan or
   configures supervision goes through [with_faults], whose [finally]
   disarms, restores the default supervision config and clears the
   store degradation latch — so the other suites in this binary keep
   running fault-free. *)

open Helpers
module Rng = Prng.Rng
module Plan = Fault.Plan
module Spec = Fault.Spec
module Inject = Fault.Inject
module Retry = Fault.Retry
module Shutdown = Fault.Shutdown
module Supervise = Sim.Supervise
module Runner = Sim.Runner
module Fsio = Store.Fsio
module Objects = Store.Objects

let check_string = Alcotest.(check string)

let counter name = Obs.Metrics.count (Obs.Metrics.counter name)

let with_tmp_dir f =
  let dir = Filename.temp_file "ephemeral-fault-test" "" in
  Sys.remove dir;
  Fsio.ensure_dir dir;
  Fun.protect ~finally:(fun () -> Fsio.remove_tree dir) (fun () -> f dir)

let with_faults plan cfg f =
  Fun.protect
    ~finally:(fun () ->
      Inject.disarm ();
      Supervise.configure Supervise.default;
      Fsio.reset_degraded ())
    (fun () ->
      Inject.arm plan;
      Supervise.configure cfg;
      f ())

let with_jobs jobs f =
  let before = Exec.Config.jobs () in
  Exec.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_jobs before) f

(* ------------------------------------------------------------------ *)
(* Plan: the roll is a pure function of (seed, site, a, b) *)

let plan_cases =
  [
    case "roll is pure and in [0,1)" (fun () ->
        let p = { Plan.default with seed = 42L; trial = 0.5 } in
        for a = 0 to 20 do
          for b = 0 to 3 do
            let x = Plan.roll p ~site:"trial.exn" ~a ~b in
            check_bool "in range" true (x >= 0. && x < 1.);
            check_float "pure" x (Plan.roll p ~site:"trial.exn" ~a ~b)
          done
        done);
    case "roll separates sites, coordinates and seeds" (fun () ->
        let p = { Plan.default with seed = 42L } in
        let r ?(p = p) site a b = Plan.roll p ~site ~a ~b in
        let base = r "trial.exn" 3 0 in
        check_bool "site matters" true (base <> r "io.write" 3 0);
        check_bool "a matters" true (base <> r "trial.exn" 4 0);
        check_bool "b matters" true (base <> r "trial.exn" 3 1);
        check_bool "seed matters" true
          (base <> r ~p:{ p with seed = 43L } "trial.exn" 3 0));
    case "roll looks uniform enough to act as a rate" (fun () ->
        (* 1000 rolls at rate 0.3 should inject reasonably close to
           300 times; a broken mix (all-zero, all-one) fails loudly. *)
        let p = { Plan.default with seed = 7L } in
        let hits = ref 0 in
        for a = 0 to 999 do
          if Plan.roll p ~site:"trial.exn" ~a ~b:0 < 0.3 then incr hits
        done;
        check_bool "rate plausible" true (!hits > 200 && !hits < 400));
    case "active only when some rate is positive" (fun () ->
        check_bool "default inactive" false (Plan.active Plan.default);
        check_bool "seed alone inactive" false
          (Plan.active { Plan.default with seed = 9L });
        check_bool "one rate activates" true
          (Plan.active { Plan.default with io = 0.01 }));
  ]

(* ------------------------------------------------------------------ *)
(* Spec: --fault-spec parsing *)

let plan_gen =
  (* Rates as sixteenths: exactly representable, so the to_string/parse
     round-trip is equality, not approximation. *)
  QCheck2.Gen.(
    let rate = map (fun i -> float_of_int i /. 16.) (int_range 0 16) in
    map
      (fun (((seed, trial, fatal), (delay, delay_ms, io, torn, poison)),
            shard_kill) ->
        {
          Plan.seed = Int64.of_int seed;
          trial;
          fatal;
          delay;
          delay_ms = float_of_int delay_ms;
          io;
          torn;
          poison;
          shard_kill;
        })
      (pair
         (pair
            (triple (int_range 0 10_000) rate rate)
            (tup5 rate (int_range 0 5) rate rate rate))
         rate))

let spec_cases =
  [
    case "empty spec is the default plan" (fun () ->
        check_bool "default" true (Spec.parse "" = Ok Plan.default));
    case "parse reads every key" (fun () ->
        match
          Spec.parse
            "seed=9,trial=0.25,fatal=0.5,delay=0.125,delay-ms=2,io=0.75,torn=1,poison=0.0625,shard-kill=0.125"
        with
        | Error msg -> Alcotest.fail msg
        | Ok p ->
          check_bool "seed" true (p.seed = 9L);
          check_float "trial" 0.25 p.trial;
          check_float "fatal" 0.5 p.fatal;
          check_float "delay" 0.125 p.delay;
          check_float "delay_ms" 2. p.delay_ms;
          check_float "io" 0.75 p.io;
          check_float "torn" 1. p.torn;
          check_float "poison" 0.0625 p.poison;
          check_float "shard_kill" 0.125 p.shard_kill);
    case "malformed specs are errors, not silence" (fun () ->
        let rejected s =
          match Spec.parse s with Ok _ -> false | Error _ -> true
        in
        check_bool "unknown key" true (rejected "bogus=1");
        check_bool "rate above 1" true (rejected "trial=1.5");
        check_bool "negative rate" true (rejected "io=-0.1");
        check_bool "non-numeric" true (rejected "trial=lots");
        check_bool "missing value" true (rejected "trial");
        check_bool "bad seed" true (rejected "seed=abc"));
    qcase ~count:100 "to_string/parse round-trips any plan" plan_gen
      (fun p ->
        (* The canonical spec drops inert fields (delay-ms without a
           delay rate, torn without an io rate), so the round-trip
           target is the behaviourally-equal normal form. *)
        let normal =
          {
            p with
            Plan.delay_ms =
              (if p.delay > 0. then p.delay_ms else Plan.default.delay_ms);
            torn = (if p.io > 0. then p.torn else 0.);
          }
        in
        Spec.parse (Spec.to_string p) = Ok normal);
  ]

(* ------------------------------------------------------------------ *)
(* Exec.Config: EPHEMERAL_JOBS resolution (the satellite) *)

let config_cases =
  [
    case "well-formed job counts parse and clamp" (fun () ->
        check_bool "plain" true (Exec.Config.parse "8" = Ok 8);
        check_bool "trimmed" true (Exec.Config.parse " 4 " = Ok 4);
        check_bool "clamped to max_jobs" true
          (Exec.Config.parse "100" = Ok Exec.Config.max_jobs));
    case "malformed job counts are errors" (fun () ->
        let rejected s =
          match Exec.Config.parse s with Ok _ -> false | Error _ -> true
        in
        check_bool "abc" true (rejected "abc");
        check_bool "zero" true (rejected "0");
        check_bool "negative" true (rejected "-3");
        check_bool "empty" true (rejected ""));
  ]

(* ------------------------------------------------------------------ *)
(* Retry: bounded backoff *)

let fast = (1e-6, 1e-6) (* base, cap: keep the suite quick *)

let retry_cases =
  [
    case "transient failures clear within the budget" (fun () ->
        let base_delay_s, max_delay_s = fast in
        let retries = ref [] in
        let v =
          Retry.with_backoff ~attempts:4 ~base_delay_s ~max_delay_s
            ~retryable:(fun _ -> true)
            ~on_retry:(fun k _ -> retries := k :: !retries)
            (fun attempt -> if attempt < 2 then raise Exit else attempt)
        in
        check_int "succeeded on attempt 2" 2 v;
        Alcotest.(check (list int)) "one on_retry per failure" [ 1; 0 ]
          !retries);
    case "unretryable exceptions propagate immediately" (fun () ->
        let base_delay_s, max_delay_s = fast in
        let calls = ref 0 in
        (try
           Retry.with_backoff ~attempts:4 ~base_delay_s ~max_delay_s
             ~retryable:(function Exit -> true | _ -> false)
             ~on_retry:(fun _ _ -> ())
             (fun _ ->
               incr calls;
               raise Not_found)
         with Not_found -> ());
        check_int "single attempt" 1 !calls);
    case "exhaustion re-raises the final failure" (fun () ->
        let base_delay_s, max_delay_s = fast in
        let calls = ref 0 in
        (try
           Retry.with_backoff ~attempts:3 ~base_delay_s ~max_delay_s
             ~retryable:(fun _ -> true)
             ~on_retry:(fun _ _ -> ())
             (fun _ ->
               incr calls;
               raise Exit)
         with Exit -> ());
        check_int "all attempts spent" 3 !calls);
    case "attempts below one are a caller bug" (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Retry.with_backoff: attempts must be >= 1")
          (fun () ->
            ignore
              (Retry.with_backoff ~attempts:0 ~retryable:(fun _ -> true)
                 ~on_retry:(fun _ _ -> ())
                 (fun _ -> ()))));
  ]

(* ------------------------------------------------------------------ *)
(* Shutdown: hook ordering and idempotence *)

let shutdown_cases =
  [
    case "hooks run LIFO, once, with exceptions swallowed" (fun () ->
        Fun.protect ~finally:Shutdown.reset (fun () ->
            Shutdown.reset ();
            let order = ref [] in
            Shutdown.on_shutdown (fun () -> order := "first" :: !order);
            Shutdown.on_shutdown (fun () -> failwith "hook bug");
            Shutdown.on_shutdown (fun () -> order := "last" :: !order);
            Shutdown.run_hooks ();
            Alcotest.(check (list string))
              "LIFO, raising hook skipped" [ "first"; "last" ]
              !order;
            Shutdown.run_hooks ();
            Alcotest.(check (list string)) "second run is a no-op"
              [ "first"; "last" ] !order));
  ]

(* ------------------------------------------------------------------ *)
(* Supervise: retries replay a pristine stream *)

let supervise_cases =
  [
    case "disarmed hooks are no-ops" (fun () ->
        Inject.disarm ();
        Inject.before_trial ~trial:0 ~attempt:0;
        check_bool "io ok" true
          (Inject.io_write ~path:"p" ~attempt:0 = Inject.Io_ok);
        check_bool "no poison" false
          (Inject.poison_worker ~worker:0 ~generation:0));
    case "arming an inactive plan disarms" (fun () ->
        Inject.arm { Plan.default with seed = 3L };
        check_bool "not armed" false (Inject.armed ()));
    case "a retried trial computes the byte-identical value" (fun () ->
        (* trial=0.9: almost every attempt is faulted, so success takes
           several retries — and must still equal the fault-free draw
           from a copy of the same pristine stream. *)
        with_faults
          { Plan.default with seed = 11L; trial = 0.9 }
          { Supervise.default with max_retries = 200 }
          (fun () ->
            let rng0 = Rng.create 77 in
            let expected = Rng.bits64 (Rng.copy rng0) in
            match Supervise.run_trial ~trial:0 rng0 Rng.bits64 with
            | Ok v -> Alcotest.(check int64) "identical" expected v
            | Error f -> Alcotest.fail f.message));
    case "retry exhaustion returns the failure" (fun () ->
        with_faults
          { Plan.default with seed = 1L; trial = 1. }
          { Supervise.default with max_retries = 2 }
          (fun () ->
            match Supervise.run_trial ~trial:5 (Rng.create 1) Rng.bits64 with
            | Ok _ -> Alcotest.fail "injection at rate 1 cannot succeed"
            | Error f ->
              check_int "trial recorded" 5 f.trial;
              check_int "initial + 2 retries" 3 f.attempts));
    case "run deadline fails remaining trials fast" (fun () ->
        with_faults Plan.default
          { Supervise.default with run_deadline = Some 0. }
          (fun () ->
            match Supervise.run_trial ~trial:0 (Rng.create 1) Rng.bits64 with
            | Ok _ -> Alcotest.fail "deadline of 0 must already have passed"
            | Error f -> check_int "no retries burned" 1 f.attempts));
    qcase ~count:20
      "retryable faults never change Runner.map output at any job count"
      QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 6))
      (fun (seed, rate16) ->
        let trials = 20 in
        let run () =
          Runner.map (Rng.create seed) ~trials (fun _ r -> Rng.bits64 r)
        in
        let baseline = with_jobs 1 run in
        let plan =
          {
            Plan.default with
            seed = Int64.of_int seed;
            trial = float_of_int rate16 /. 16.;
            poison = 0.25;
          }
        in
        (* Rate <= 0.375 and 48 retries: the chance any trial exhausts
           its budget is below 2^-67 — retry exhaustion can never be
           the reason this property fails. *)
        let faulted jobs =
          with_faults plan
            { Supervise.default with max_retries = 48 }
            (fun () -> with_jobs jobs run)
        in
        faulted 1 = baseline && faulted 4 = baseline);
    case "keep-going drops failed trials and records degradation" (fun () ->
        with_faults
          { Plan.default with seed = 5L; trial = 0.4; fatal = 1. }
          { Supervise.default with keep_going = true }
          (fun () ->
            let out =
              with_jobs 2 (fun () ->
                  Runner.map (Rng.create 3) ~trials:30 (fun _ r -> Rng.bits64 r))
            in
            let failed = List.length (Supervise.failures ()) in
            check_bool "some trials failed" true (failed > 0);
            check_int "survivors = planned - failed" (30 - failed)
              (Array.length out);
            check_bool "run degraded" true (Supervise.degraded ());
            check_bool "CI widened" true (Supervise.ci_widen () > 1.)));
    case "without keep-going the first failing trial aborts the run" (fun () ->
        let plan = { Plan.default with seed = 5L; trial = 0.4; fatal = 1. } in
        (* The injection pattern is a pure roll, so the test can predict
           which trial fails first. *)
        let rec first_faulted i =
          if Plan.roll plan ~site:"trial.exn" ~a:i ~b:0 < plan.trial then i
          else first_faulted (i + 1)
        in
        with_faults plan Supervise.default (fun () ->
            match
              with_jobs 2 (fun () ->
                  Runner.map (Rng.create 3) ~trials:30 (fun _ r -> Rng.bits64 r))
            with
            | _ -> Alcotest.fail "expected Trial_failed"
            | exception Supervise.Trial_failed f ->
              check_int "earliest failing trial" (first_faulted 0) f.trial));
  ]

(* ------------------------------------------------------------------ *)
(* Store: IO faults, retries, torn writes, the degradation latch *)

let store_cases =
  [
    case "write_atomic survives a transient IO fault, with retries counted"
      (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "value" in
            (* Rolls are pure, so probe seeds until this path gets a
               plan that fails attempt 0 but clears within the retry
               budget — the test then knows the exact outcome. *)
            let transient seed =
              let p = { Plan.default with seed = Int64.of_int seed; io = 0.5 } in
              let fails attempt =
                Plan.roll p ~site:"io.write" ~a:(Hashtbl.hash path) ~b:attempt
                < p.io
              in
              if fails 0 && not (fails 1) then Some p else None
            in
            let rec find seed =
              match transient seed with
              | Some p -> p
              | None -> find (seed + 1)
            in
            let plan = find 0 in
            with_faults plan Supervise.default (fun () ->
                let before = counter "store.io_retries" in
                Fsio.write_atomic path "payload";
                check_bool "retried at least once" true
                  (counter "store.io_retries" > before);
                check_bool "content intact" true
                  (Fsio.read_file path = Some "payload"))));
    case "torn transient write still yields the full file" (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "value" in
            let rec find seed =
              let p =
                {
                  Plan.default with
                  seed = Int64.of_int seed;
                  io = 0.5;
                  torn = 1.;
                }
              in
              let fails attempt =
                Plan.roll p ~site:"io.write" ~a:(Hashtbl.hash path) ~b:attempt
                < p.io
              in
              if fails 0 && not (fails 1) then p else find (seed + 1)
            in
            with_faults (find 0) Supervise.default (fun () ->
                Fsio.write_atomic path "full content";
                check_bool "no torn survivor" true
                  (Fsio.read_file path = Some "full content"))));
    case "persistent IO failure exhausts the retry budget" (fun () ->
        with_tmp_dir (fun dir ->
            let path = Filename.concat dir "value" in
            with_faults
              { Plan.default with seed = 2L; io = 1. }
              Supervise.default
              (fun () ->
                (match Fsio.write_atomic path "doomed" with
                | () -> Alcotest.fail "rate-1 IO faults cannot succeed"
                | exception Sys_error _ -> ());
                check_bool "no partial file" true (Fsio.read_file path = None))));
    case "degradation latch turns Cache.put into a no-op" (fun () ->
        with_tmp_dir (fun dir ->
            Fun.protect ~finally:Fsio.reset_degraded (fun () ->
                let store = Objects.open_ ~dir in
                let e1 = Option.get (Sim.Experiments.find "e1") in
                let outcome =
                  Sim.Outcome.make
                    [
                      Stats.Table.create ~title:"t" ~columns:[ "c" ];
                    ]
                in
                Fsio.degrade ~what:"test latch";
                check_bool "latched" true (Fsio.degraded ());
                Sim.Cache.put store e1 ~seed:1 ~quick:true outcome;
                check_int "nothing published" 0
                  (List.length (Objects.entries store));
                Fsio.reset_degraded ();
                Sim.Cache.put store e1 ~seed:1 ~quick:true outcome;
                check_int "publishing again" 1
                  (List.length (Objects.entries store)))));
    case "torn manifest lines are skipped and counted" (fun () ->
        with_tmp_dir (fun dir ->
            let s = Objects.open_ ~dir in
            ignore (Objects.put s ~key:"good" ~meta:[] "bytes");
            let oc =
              open_out_gen
                [ Open_append; Open_binary ]
                0o644 (Objects.manifest_path s)
            in
            output_string oc "{\"key\":\"torn";
            close_out oc;
            let before = counter "store.manifest_torn" in
            let s' = Objects.open_ ~dir in
            check_int "good entry survives" 1 (List.length (Objects.entries s'));
            check_int "torn line counted" (before + 1)
              (counter "store.manifest_torn")));
  ]

(* ------------------------------------------------------------------ *)
(* Pool: poisoned workers cannot wedge or corrupt a task *)

let pool_cases =
  [
    case "fully poisoned workers: the caller still drains every index"
      (fun () ->
        with_faults
          { Plan.default with seed = 4L; poison = 1. }
          Supervise.default
          (fun () ->
            let pool = Exec.Pool.create ~jobs:4 in
            Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool)
              (fun () ->
                let out =
                  Exec.Pool.map_range pool ~lo:0 ~hi:200 (fun i -> i * 3)
                in
                Alcotest.(check (array int))
                  "complete and ordered"
                  (Array.init 200 (fun i -> i * 3))
                  out)));
    case "task exceptions surface to the caller without wedging the pool"
      (fun () ->
        let pool = Exec.Pool.create ~jobs:2 in
        Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool)
          (fun () ->
            (try
               ignore
                 (Exec.Pool.map_range pool ~lo:0 ~hi:50 (fun i ->
                      if i = 13 then failwith "task bug" else i))
             with Failure _ -> ());
            (* The pool must still be usable after a failed task. *)
            let out = Exec.Pool.map_range pool ~lo:0 ~hi:10 (fun i -> i) in
            Alcotest.(check (array int))
              "pool alive" (Array.init 10 Fun.id) out));
  ]

let suites =
  [
    ("fault.plan", plan_cases);
    ("fault.spec", spec_cases);
    ("fault.config", config_cases);
    ("fault.retry", retry_cases);
    ("fault.shutdown", shutdown_cases);
    ("fault.supervise", supervise_cases);
    ("fault.store", store_cases);
    ("fault.pool", pool_cases);
  ]
