(* Tests for lib/prng: generators, sampling, label distributions. *)

open Helpers
module Rng = Prng.Rng
module Sample = Prng.Sample
module Dist = Prng.Dist

(* --------------------------------------------------------------- *)
(* Splitmix64 / Xoshiro256 *)

let splitmix_deterministic () =
  let a = Prng.Splitmix64.create 42 and b = Prng.Splitmix64.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix64.next a)
      (Prng.Splitmix64.next b)
  done

let splitmix_copy_replays () =
  let a = Prng.Splitmix64.create 7 in
  ignore (Prng.Splitmix64.next a);
  let b = Prng.Splitmix64.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Prng.Splitmix64.next a)
      (Prng.Splitmix64.next b)
  done

let splitmix_seeds_differ () =
  let a = Prng.Splitmix64.create 1 and b = Prng.Splitmix64.create 2 in
  check_bool "different seeds diverge" false
    (Prng.Splitmix64.next a = Prng.Splitmix64.next b)

let splitmix_next_in_bounds () =
  let g = Prng.Splitmix64.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.Splitmix64.next_in g 7 in
    check_bool "in [0,7)" true (v >= 0 && v < 7)
  done

let splitmix_next_in_invalid () =
  let g = Prng.Splitmix64.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument
    "Splitmix64.next_in: bound must be positive") (fun () ->
      ignore (Prng.Splitmix64.next_in g 0))

let xoshiro_deterministic () =
  let a = Prng.Xoshiro256.create 9 and b = Prng.Xoshiro256.create 9 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Xoshiro256.next a)
      (Prng.Xoshiro256.next b)
  done

let xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero"
    (Invalid_argument "Xoshiro256.of_state: all-zero state") (fun () ->
      ignore (Prng.Xoshiro256.of_state 0L 0L 0L 0L))

let xoshiro_jump_diverges () =
  let a = Prng.Xoshiro256.create 3 in
  let b = Prng.Xoshiro256.copy a in
  Prng.Xoshiro256.jump b;
  let overlap = ref false in
  let first_a = Prng.Xoshiro256.next a in
  for _ = 1 to 1000 do
    if Prng.Xoshiro256.next b = first_a then overlap := true
  done;
  check_bool "jumped stream avoids the original prefix" false !overlap

(* --------------------------------------------------------------- *)
(* Rng *)

let rng_int_bounds () =
  let g = rng () in
  for bound = 1 to 20 do
    for _ = 1 to 200 do
      let v = Rng.int g bound in
      check_bool "0 <= v < bound" true (v >= 0 && v < bound)
    done
  done

let rng_int_invalid () =
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int (rng ()) 0))

let rng_int_covers_range () =
  let g = rng () in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int g 5) <- true
  done;
  check_bool "all values hit" true (Array.for_all Fun.id seen)

let rng_int_in () =
  let g = rng () in
  let lo = ref max_int and hi = ref min_int in
  for _ = 1 to 2000 do
    let v = Rng.int_in g 3 9 in
    check_bool "in [3,9]" true (v >= 3 && v <= 9);
    lo := min !lo v;
    hi := max !hi v
  done;
  check_int "min attained" 3 !lo;
  check_int "max attained" 9 !hi

let rng_int_in_singleton () =
  check_int "degenerate range" 4 (Rng.int_in (rng ()) 4 4)

let rng_int_in_invalid () =
  Alcotest.check_raises "empty range"
    (Invalid_argument "Rng.int_in: empty range") (fun () ->
      ignore (Rng.int_in (rng ()) 5 4))

let rng_float_range () =
  let g = rng () in
  for _ = 1 to 2000 do
    let v = Rng.float g in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let rng_float_mean () =
  let g = rng () in
  let total = ref 0. in
  let n = 20000 in
  for _ = 1 to n do
    total := !total +. Rng.float g
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let rng_bool_both () =
  let g = rng () in
  let t = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool g then incr t
  done;
  check_bool "roughly balanced" true (!t > 400 && !t < 600)

let rng_bernoulli_extremes () =
  let g = rng () in
  for _ = 1 to 100 do
    check_bool "p=1 always true" true (Rng.bernoulli g 1.0);
    check_bool "p=0 always false" false (Rng.bernoulli g 0.0)
  done

let rng_split_independent () =
  let g = rng () in
  let a = Rng.split g and b = Rng.split g in
  let equal = ref 0 in
  for _ = 1 to 100 do
    if Rng.bits64 a = Rng.bits64 b then incr equal
  done;
  check_bool "children differ" true (!equal < 5)

let rng_split_reproducible () =
  let stream seed =
    let g = Rng.create seed in
    let child = Rng.split g in
    List.init 20 (fun _ -> Rng.bits64 child)
  in
  Alcotest.(check (list int64)) "same split stream" (stream 11) (stream 11)

let rng_split_n () =
  let g = rng () in
  check_int "split_n length" 7 (Array.length (Rng.split_n g 7))

(* The parallel runner's determinism rests on this: pre-splitting all
   per-trial streams upfront gives each child exactly the stream it
   would have under lazy sequential splitting, and draws from one child
   never perturb another — so any execution interleaving of the
   children reads the same numbers. *)
let split_n_interleaving_independent =
  qcase "split_n streams independent of draw interleaving"
    ~print:(fun (seed, k) -> Printf.sprintf "(seed=%d, k=%d)" seed k)
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 8))
    (fun (seed, k) ->
      let draws = 5 in
      (* All children split upfront, each drained in turn. *)
      let upfront =
        let rs = Rng.split_n (Rng.create seed) k in
        Array.map (fun r -> Array.init draws (fun _ -> Rng.bits64 r)) rs
      in
      (* Child i split lazily, only after children < i were drained. *)
      let lazy_interleaved =
        let g = Rng.create seed in
        let out = Array.make k [||] in
        for i = 0 to k - 1 do
          let r = Rng.split g in
          out.(i) <- Array.init draws (fun _ -> Rng.bits64 r)
        done;
        out
      in
      (* All children split upfront, drained round-robin. *)
      let round_robin =
        let rs = Rng.split_n (Rng.create seed) k in
        let out = Array.make_matrix k draws 0L in
        for j = 0 to draws - 1 do
          for i = 0 to k - 1 do
            out.(i).(j) <- Rng.bits64 rs.(i)
          done
        done;
        out
      in
      upfront = lazy_interleaved && upfront = round_robin)

let rng_copy_replays () =
  let g = rng () in
  ignore (Rng.bits64 g);
  let twin = Rng.copy g in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Rng.bits64 g) (Rng.bits64 twin)
  done

(* --------------------------------------------------------------- *)
(* Sample *)

let sorted_copy a =
  let c = Array.copy a in
  Array.sort compare c;
  c

let shuffle_is_permutation =
  qcase "shuffle preserves the multiset" ~print:(fun l ->
      String.concat "," (List.map string_of_int l))
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 100))
    (fun l ->
      let a = Array.of_list l in
      Sample.shuffle (rng ()) a;
      sorted_copy a = sorted_copy (Array.of_list l))

let permutation_is_permutation =
  qcase "permutation of 0..n-1" ~print:string_of_int
    QCheck2.Gen.(int_range 1 50)
    (fun n ->
      let p = Sample.permutation (rng ~seed:n ()) n in
      sorted_copy p = Array.init n Fun.id)

let shuffle_varies () =
  let g = rng () in
  let a = Array.init 20 Fun.id in
  Sample.shuffle g a;
  check_bool "some element moved (overwhelmingly likely)" true
    (a <> Array.init 20 Fun.id)

let choose_distinct_basic () =
  let picks = Sample.choose_distinct (rng ()) ~k:5 ~n:10 in
  check_int "k picks" 5 (Array.length picks);
  let sorted = sorted_copy picks in
  Array.iteri
    (fun i v ->
      check_bool "in range" true (v >= 0 && v < 10);
      if i > 0 then check_bool "distinct" true (sorted.(i) <> sorted.(i - 1)))
    sorted

let choose_distinct_all () =
  let picks = Sample.choose_distinct (rng ()) ~k:6 ~n:6 in
  Alcotest.(check (array int)) "k = n is a permutation"
    (Array.init 6 Fun.id) (sorted_copy picks)

let choose_distinct_none () =
  check_int "k = 0" 0 (Array.length (Sample.choose_distinct (rng ()) ~k:0 ~n:5))

let choose_distinct_invalid () =
  Alcotest.check_raises "k > n"
    (Invalid_argument "Sample.choose_distinct: need 0 <= k <= n") (fun () ->
      ignore (Sample.choose_distinct (rng ()) ~k:4 ~n:3))

let geometric_support () =
  let g = rng () in
  for _ = 1 to 1000 do
    check_bool ">= 1" true (Sample.geometric g ~p:0.3 >= 1)
  done

let geometric_p1 () =
  check_int "p = 1 is always 1" 1 (Sample.geometric (rng ()) ~p:1.0)

let geometric_mean () =
  let g = rng () in
  let total = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    total := !total + Sample.geometric g ~p:0.25
  done;
  let mean = float_of_int !total /. float_of_int n in
  check_bool "mean near 1/p = 4" true (abs_float (mean -. 4.) < 0.2)

let geometric_invalid () =
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Sample.geometric: need 0 < p <= 1") (fun () ->
      ignore (Sample.geometric (rng ()) ~p:0.))

let binomial_bounds () =
  let g = rng () in
  for _ = 1 to 500 do
    let v = Sample.binomial g ~n:20 ~p:0.4 in
    check_bool "0 <= v <= n" true (v >= 0 && v <= 20)
  done

let binomial_extremes () =
  check_int "p=0" 0 (Sample.binomial (rng ()) ~n:50 ~p:0.);
  check_int "p=1" 50 (Sample.binomial (rng ()) ~n:50 ~p:1.);
  check_int "n=0" 0 (Sample.binomial (rng ()) ~n:0 ~p:0.5)

let binomial_mean () =
  let g = rng () in
  let total = ref 0 in
  for _ = 1 to 5000 do
    total := !total + Sample.binomial g ~n:10 ~p:0.3
  done;
  let mean = float_of_int !total /. 5000. in
  check_bool "mean near np = 3" true (abs_float (mean -. 3.) < 0.15)

let zipf_range () =
  let g = rng () in
  for _ = 1 to 500 do
    let v = Sample.zipf g ~s:1.2 ~n:30 in
    check_bool "in {1..30}" true (v >= 1 && v <= 30)
  done

let zipf_head_heavy () =
  let cache = Sample.Zipf_cache.create ~s:1.5 ~n:50 in
  let g = rng () in
  let ones = ref 0 and fifties = ref 0 in
  for _ = 1 to 5000 do
    match Sample.Zipf_cache.draw cache g with
    | 1 -> incr ones
    | 50 -> incr fifties
    | _ -> ()
  done;
  check_bool "mass decreasing in rank" true (!ones > !fifties)

(* --------------------------------------------------------------- *)
(* Dist *)

let dist_uniform_range () =
  let sampler = Dist.Sampler.create Uniform ~a:9 in
  let g = rng () in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    let v = Dist.Sampler.draw sampler g in
    check_bool "in {1..9}" true (v >= 1 && v <= 9);
    seen.(v) <- true
  done;
  for i = 1 to 9 do
    check_bool "every label reachable" true seen.(i)
  done

let dist_geometric_truncated () =
  let sampler = Dist.Sampler.create (Geometric 0.1) ~a:5 in
  let g = rng () in
  for _ = 1 to 2000 do
    let v = Dist.Sampler.draw sampler g in
    check_bool "truncated to {1..5}" true (v >= 1 && v <= 5)
  done

let dist_zipf_range () =
  let sampler = Dist.Sampler.create (Zipf 1.0) ~a:7 in
  let g = rng () in
  for _ = 1 to 500 do
    let v = Dist.Sampler.draw sampler g in
    check_bool "in {1..7}" true (v >= 1 && v <= 7)
  done

let dist_point_clamped () =
  let g = rng () in
  check_int "point within" 3 (Dist.draw (Point 3) ~a:10 g);
  check_int "point clamped high" 10 (Dist.draw (Point 99) ~a:10 g);
  check_int "point clamped low" 1 (Dist.draw (Point (-2)) ~a:10 g)

let dist_names () =
  Alcotest.(check string) "uniform" "uniform" (Dist.to_string Uniform);
  Alcotest.(check string) "point" "point(4)" (Dist.to_string (Point 4));
  Alcotest.(check string) "zipf" "zipf(1.5)" (Dist.to_string (Zipf 1.5))

let dist_invalid_lifetime () =
  Alcotest.check_raises "a = 0"
    (Invalid_argument "Dist.Sampler.create: lifetime must be positive")
    (fun () -> ignore (Dist.Sampler.create Uniform ~a:0))

let suites =
  [
    ( "prng.core",
      [
        case "splitmix deterministic" splitmix_deterministic;
        case "splitmix copy replays" splitmix_copy_replays;
        case "splitmix seeds differ" splitmix_seeds_differ;
        case "splitmix next_in bounds" splitmix_next_in_bounds;
        case "splitmix next_in invalid" splitmix_next_in_invalid;
        case "xoshiro deterministic" xoshiro_deterministic;
        case "xoshiro zero state rejected" xoshiro_zero_state_rejected;
        case "xoshiro jump diverges" xoshiro_jump_diverges;
        case "rng int bounds" rng_int_bounds;
        case "rng int invalid" rng_int_invalid;
        case "rng int covers range" rng_int_covers_range;
        case "rng int_in" rng_int_in;
        case "rng int_in singleton" rng_int_in_singleton;
        case "rng int_in invalid" rng_int_in_invalid;
        case "rng float range" rng_float_range;
        case "rng float mean" rng_float_mean;
        case "rng bool balanced" rng_bool_both;
        case "rng bernoulli extremes" rng_bernoulli_extremes;
        case "rng split independent" rng_split_independent;
        case "rng split reproducible" rng_split_reproducible;
        case "rng split_n" rng_split_n;
        split_n_interleaving_independent;
        case "rng copy replays" rng_copy_replays;
      ] );
    ( "prng.sample",
      [
        shuffle_is_permutation;
        permutation_is_permutation;
        case "shuffle varies" shuffle_varies;
        case "choose_distinct basic" choose_distinct_basic;
        case "choose_distinct all" choose_distinct_all;
        case "choose_distinct none" choose_distinct_none;
        case "choose_distinct invalid" choose_distinct_invalid;
        case "geometric support" geometric_support;
        case "geometric p = 1" geometric_p1;
        case "geometric mean" geometric_mean;
        case "geometric invalid" geometric_invalid;
        case "binomial bounds" binomial_bounds;
        case "binomial extremes" binomial_extremes;
        case "binomial mean" binomial_mean;
        case "zipf range" zipf_range;
        case "zipf head heavy" zipf_head_heavy;
      ] );
    ( "prng.dist",
      [
        case "uniform range and coverage" dist_uniform_range;
        case "geometric truncated" dist_geometric_truncated;
        case "zipf range" dist_zipf_range;
        case "point clamped" dist_point_clamped;
        case "names" dist_names;
        case "invalid lifetime" dist_invalid_lifetime;
      ] );
  ]
