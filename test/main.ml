(* Aggregated test runner: every module's suites under one alcotest run. *)

let () =
  Alcotest.run "ephemeral-networks"
    (Test_prng.suites @ Test_stats.suites @ Test_sgraph.suites
   @ Test_temporal_core.suites @ Test_foremost.suites
   @ Test_reachability.suites @ Test_expansion.suites @ Test_opt.suites
   @ Test_por.suites @ Test_taxonomy.suites @ Test_connectivity.suites @ Test_ops.suites
   @ Test_models.suites @ Test_crosschecks.suites @ Test_phonecall.suites @ Test_sim.suites
   @ Test_obs.suites @ Test_exec.suites @ Test_store.suites @ Test_fault.suites
   @ Test_kernel.suites @ Test_batch.suites @ Test_implicit.suites @ Test_serve.suites)
