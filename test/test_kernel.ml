(* Flat-kernel regression suite: the counting-sorted stream, the CSR
   crossing tables, the single-label fast path, and the per-domain
   workspace reuse introduced by the flat temporal core.  Everything
   here pins the new layout against either a declarative specification
   (stable sort by label) or the seed-era behaviour (full-stream sweep
   with no early exit). *)

module Graph = Sgraph.Graph
module Rng = Prng.Rng
open Temporal
open Helpers

(* ------------------------------------------------------------------ *)
(* Counting sort = stable sort by label *)

(* The specification: emit the stream in edge-id order (labels
   ascending per edge, u->v then v->u for undirected) and stable-sort
   by label.  Tgraph must produce exactly this order — the counting
   sort's stability is part of the contract, not an accident. *)
let spec_stream net =
  let g = Tgraph.graph net in
  let entries = ref [] in
  Graph.iter_edges g (fun e u v ->
      Tgraph.iter_edge_labels net e (fun l ->
          entries := (u, v, l, e) :: !entries;
          if not (Graph.is_directed g) then entries := (v, u, l, e) :: !entries));
  List.stable_sort
    (fun (_, _, l1, _) (_, _, l2, _) -> compare l1 l2)
    (List.rev !entries)

let actual_stream net =
  let entries = ref [] in
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge ->
      entries := (src, dst, label, edge) :: !entries);
  List.rev !entries

let stream_is_stable_sort =
  qcase ~count:200 ~print:print_params "stream = stable sort by label"
    gen_params (fun params ->
      let net = random_tnet params in
      actual_stream net = spec_stream net)

let stream_matches_raw_arrays () =
  let net = fixture () in
  let te_src, te_dst, te_label, te_edge = Tgraph.stream net in
  check_int "stream length" (Tgraph.time_edge_count net)
    (Array.length te_label);
  List.iteri
    (fun i (src, dst, label, edge) ->
      check_int "src" src te_src.(i);
      check_int "dst" dst te_dst.(i);
      check_int "label" label te_label.(i);
      check_int "edge" edge te_edge.(i))
    (actual_stream net)

(* ------------------------------------------------------------------ *)
(* Graph.of_arrays = Graph.create *)

let gen_arrays_params =
  QCheck2.Gen.(
    let* n = int_range 2 10 in
    let* seed = int_range 0 10_000 in
    let* directed = bool in
    return (n, seed, directed))

let print_arrays_params (n, seed, directed) =
  Printf.sprintf "(n=%d, seed=%d, directed=%b)" n seed directed

(* Distinct random edges as (src, dst) pairs. *)
let random_edge_list ~n ~seed ~directed =
  let rng = Rng.create seed in
  let seen = Hashtbl.create 16 in
  let edges = ref [] in
  let attempts = 2 * n in
  for _ = 1 to attempts do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = if directed || u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        edges := (u, v) :: !edges
      end
    end
  done;
  List.rev !edges

let graphs_agree g1 g2 =
  Graph.n g1 = Graph.n g2
  && Graph.m g1 = Graph.m g2
  && Graph.edges g1 = Graph.edges g2
  && List.for_all
       (fun v ->
         Graph.out_arcs g1 v = Graph.out_arcs g2 v
         && Graph.in_arcs g1 v = Graph.in_arcs g2 v
         && Graph.out_degree g1 v = Graph.out_degree g2 v
         && Graph.in_degree g1 v = Graph.in_degree g2 v)
       (List.init (Graph.n g1) Fun.id)

let of_arrays_matches_create =
  qcase ~count:200 ~print:print_arrays_params "of_arrays = create"
    gen_arrays_params (fun (n, seed, directed) ->
      let kind = if directed then Graph.Directed else Graph.Undirected in
      let edges = random_edge_list ~n ~seed ~directed in
      let by_list = Graph.create kind ~n edges in
      let by_arrays =
        Graph.of_arrays kind ~n
          (Array.of_list (List.map fst edges))
          (Array.of_list (List.map snd edges))
      in
      graphs_agree by_list by_arrays)

let of_arrays_validates () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_arrays: endpoint out of range (0,3)")
    (fun () -> ignore (Graph.of_arrays Directed ~n:3 [| 0 |] [| 3 |]));
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph.of_arrays: self-loop") (fun () ->
      ignore (Graph.of_arrays Directed ~n:3 [| 1 |] [| 1 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Graph.of_arrays: endpoint arrays differ in length")
    (fun () -> ignore (Graph.of_arrays Directed ~n:3 [| 0; 1 |] [| 1 |]))

let trusted_generators_match_list_path () =
  (* The converted generators must produce the same graphs (same edge
     ids, same adjacency) as the historical list-based construction. *)
  let list_clique kind n =
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        let keep = match kind with
          | Graph.Directed -> u <> v
          | Graph.Undirected -> u < v
        in
        if keep then edges := (u, v) :: !edges
      done
    done;
    Graph.create kind ~n !edges
  in
  check_bool "directed clique" true
    (graphs_agree (list_clique Graph.Directed 7)
       (Sgraph.Gen.clique Directed 7));
  check_bool "undirected clique" true
    (graphs_agree (list_clique Graph.Undirected 7)
       (Sgraph.Gen.clique Undirected 7));
  let list_bipartite a b =
    let edges = ref [] in
    for u = 0 to a - 1 do
      for v = a to a + b - 1 do
        edges := (u, v) :: !edges
      done
    done;
    Graph.create Undirected ~n:(a + b) !edges
  in
  check_bool "complete bipartite" true
    (graphs_agree (list_bipartite 3 4) (Sgraph.Gen.complete_bipartite 3 4))

(* ------------------------------------------------------------------ *)
(* Single-label fast path *)

let gen_single_params =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* seed = int_range 0 10_000 in
    let* a = int_range 1 12 in
    return (n, seed, a))

let print_single_params (n, seed, a) =
  Printf.sprintf "(n=%d, seed=%d, a=%d)" n seed a

let of_flat_arcs_matches_create =
  qcase ~count:200 ~print:print_single_params
    "of_flat_arcs = create with singletons" gen_single_params
    (fun (n, seed, a) ->
      let g = random_graph ~n ~seed in
      let flat =
        Array.init (Graph.m g) (fun e -> 1 + ((seed + (7 * e)) mod a))
      in
      let by_flat = Tgraph.of_flat_arcs g ~lifetime:a (Array.copy flat) in
      let by_sets =
        Tgraph.create g ~lifetime:a (Array.map Label.singleton flat)
      in
      actual_stream by_flat = actual_stream by_sets
      && Tgraph.label_count by_flat = Tgraph.label_count by_sets
      && List.for_all
           (fun e ->
             Label.to_list (Tgraph.labels by_flat e)
             = Label.to_list (Tgraph.labels by_sets e)
             && Tgraph.edge_label_size by_flat e = 1
             && Tgraph.edge_has_label by_flat e flat.(e))
           (List.init (Graph.m g) Fun.id)
      && List.for_all
           (fun s ->
             Foremost.arrival_array (Foremost.run by_flat s)
             = Foremost.arrival_array (Foremost.run by_sets s))
           (List.init n Fun.id))

let of_flat_arcs_validates () =
  let g = Sgraph.Gen.path 3 in
  Alcotest.check_raises "lifetime"
    (Invalid_argument "Tgraph.of_flat_arcs: lifetime must be positive")
    (fun () -> ignore (Tgraph.of_flat_arcs g ~lifetime:0 [| 1; 1 |]));
  Alcotest.check_raises "length"
    (Invalid_argument "Tgraph.of_flat_arcs: one label per edge required")
    (fun () -> ignore (Tgraph.of_flat_arcs g ~lifetime:3 [| 1 |]));
  Alcotest.check_raises "positive"
    (Invalid_argument "Tgraph.of_flat_arcs: labels must be positive")
    (fun () -> ignore (Tgraph.of_flat_arcs g ~lifetime:3 [| 0; 1 |]));
  Alcotest.check_raises "beyond lifetime"
    (Invalid_argument "Tgraph.of_flat_arcs: label beyond the lifetime")
    (fun () -> ignore (Tgraph.of_flat_arcs g ~lifetime:3 [| 1; 4 |]))

let scalar_queries_match_label_sets =
  qcase ~count:200 ~print:print_params "scalar edge queries = Label ops"
    gen_params (fun params ->
      let net = random_tnet params in
      let g = Tgraph.graph net in
      List.for_all
        (fun e ->
          let ls = Tgraph.labels net e in
          Tgraph.edge_label_size net e = Label.size ls
          && List.for_all
               (fun x ->
                 Tgraph.edge_has_label net e x = Label.mem ls x
                 && Tgraph.edge_next_label_after net e x = Label.next_after ls x
                 && Tgraph.edge_next_label_in net e ~lo:x ~hi:(x + 3)
                    = Label.next_in ls ~lo:x ~hi:(x + 3))
               (List.init 14 Fun.id))
        (List.init (Graph.m g) Fun.id))

(* ------------------------------------------------------------------ *)
(* Foremost: early exit and borrowed workspace vs the seed sweep *)

(* The seed-era sweep: full stream, no early exit, fresh arrays. *)
let seed_sweep ?(start_time = 1) net s =
  let n = Tgraph.n net in
  let arrival = Array.make n max_int in
  arrival.(s) <- start_time - 1;
  Tgraph.iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      if arrival.(src) < label && label < arrival.(dst) then
        arrival.(dst) <- label);
  arrival

let run_matches_seed_sweep =
  qcase ~count:300 ~print:print_params "run = seed full-stream sweep"
    gen_params (fun (n, seed, a, r) ->
      let net = random_tnet (n, seed, a, r) in
      let start_time = 1 + (seed mod 3) in
      List.for_all
        (fun s ->
          Foremost.arrival_array (Foremost.run ~start_time net s)
          = seed_sweep ~start_time net s)
        (List.init n Fun.id))

let borrowed_matches_run =
  qcase ~count:200 ~print:print_params "arrivals_borrowed = run" gen_params
    (fun (n, seed, a, r) ->
      let net = random_tnet (n, seed, a, r) in
      List.for_all
        (fun s ->
          let borrowed = Foremost.arrivals_borrowed net s in
          let fresh = Foremost.arrival_array (Foremost.run net s) in
          Array.sub borrowed 0 n = fresh)
        (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Workspace reuse across domains *)

let workspace_grows_and_reuses () =
  let ws16 = Workspace.get ~n:10 in
  check_bool "capacity >= n" true (Array.length ws16.Workspace.arrival >= 10);
  let again = Workspace.get ~n:4 in
  check_bool "same arrays reused" true
    (ws16.Workspace.arrival == again.Workspace.arrival);
  let bigger = Workspace.get ~n:1000 in
  check_bool "grown" true (Array.length bigger.Workspace.arrival >= 1000);
  Alcotest.check_raises "negative" (Invalid_argument "Workspace.get: negative size")
    (fun () -> ignore (Workspace.get ~n:(-1)))

let parallel_workspace_reentrant () =
  (* Distinct-size networks interleaved across 4 worker domains: each
     domain's workspace is repeatedly borrowed, resized, and reused.
     Results must match the sequential run exactly. *)
  let nets =
    Array.init 12 (fun i ->
        let n = 4 + (3 * (i mod 4)) in
        Assignment.uniform_single (Rng.create (100 + i))
          (Sgraph.Gen.clique Directed n) ~a:n)
  in
  let work i =
    let net = nets.(i mod Array.length nets) in
    (Distance.instance_diameter net, Reachability.reachable_pair_count net)
  in
  let sequential = Array.init 48 work in
  let pool = Exec.Pool.create ~jobs:4 in
  let parallel = Exec.Pool.map_range pool ~lo:0 ~hi:48 work in
  Exec.Pool.shutdown pool;
  Alcotest.(check (array (pair (option int) int)))
    "parallel = sequential" sequential parallel

let e1_render_matches_across_jobs () =
  (* The end-to-end reentrancy contract: a full experiment rendered at
     -j1 and -j4 in the same process, byte for byte. *)
  match Sim.Experiments.find "e1" with
  | None -> Alcotest.fail "e1 not registered"
  | Some e1 ->
    let restore = Exec.Config.jobs () in
    let render jobs =
      Exec.Pool.set_jobs jobs;
      Sim.Outcome.render (e1.run ~quick:true ~seed:Sim.Experiments.default_seed)
    in
    let seq = render 1 in
    let par = render 4 in
    Exec.Pool.set_jobs restore;
    Alcotest.(check string) "renders byte-identical" seq par

let suites =
  [
    ( "kernel.stream",
      [
        stream_is_stable_sort;
        case "stream raw arrays" stream_matches_raw_arrays;
      ] );
    ( "kernel.csr",
      [
        of_arrays_matches_create;
        case "of_arrays validations" of_arrays_validates;
        case "trusted generators" trusted_generators_match_list_path;
      ] );
    ( "kernel.single-label",
      [
        of_flat_arcs_matches_create;
        case "of_flat_arcs validations" of_flat_arcs_validates;
        scalar_queries_match_label_sets;
      ] );
    ( "kernel.foremost",
      [ run_matches_seed_sweep; borrowed_matches_run ] );
    ( "kernel.workspace",
      [
        case "grow and reuse" workspace_grows_and_reuses;
        case "parallel reentrancy" parallel_workspace_reentrant;
        case "e1 render -j1 = -j4" e1_render_matches_across_jobs;
      ] );
  ]
