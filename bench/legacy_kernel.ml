(* Seed-era implementations of the E1 clique trial pipeline, kept as a
   living baseline for the before/after kernel bench (and the
   old-vs-new equivalence test).  These replicate, structure for
   structure, the pre-flat-kernel code paths:

   - [Graph]: boxed tuple adjacency ((edge id, endpoint) array array),
     edges built from a cons list exactly as the old [Gen.clique] did;
   - [Tgraph]: time-edge stream sorted with the closure-comparator
     index permutation (plus its four permutation copies) and the
     per-vertex boxed crossing caches the old constructor always paid
     for;
   - [Foremost]/[instance_diameter]: per-source arrival/pred allocation
     with the stream walked through a closure, no early exit.

   Only what the E1 pipeline touches is replicated — a directed clique
   under a single uniform label per edge — so the module stays small
   while measuring the honest end-to-end trial cost. *)

module Rng = Prng.Rng

type graph = {
  n : int;
  edges : (int * int) array;
  out_adj : (int * int) array array;  (* per vertex: (edge id, target) *)
}

let clique n =
  if n < 1 then invalid_arg "Legacy_kernel.clique: need n >= 1";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then edges := (u, v) :: !edges
    done
  done;
  let edges = Array.of_list !edges in
  let out_count = Array.make n 0 in
  Array.iter (fun (u, _) -> out_count.(u) <- out_count.(u) + 1) edges;
  let out_adj = Array.init n (fun v -> Array.make out_count.(v) (0, 0)) in
  let out_fill = Array.make n 0 in
  Array.iteri
    (fun e (u, v) ->
      out_adj.(u).(out_fill.(u)) <- (e, v);
      out_fill.(u) <- out_fill.(u) + 1)
    edges;
  { n; edges; out_adj }

type tgraph = {
  graph : graph;
  te_src : int array;
  te_dst : int array;
  te_label : int array;
  te_edge : int array;
  out_cache : (int * int * int array) array array;
}

(* Old Assignment.uniform_single: one boxed singleton label array per
   edge, drawn in edge-id order. *)
let uniform_single rng g ~a =
  Array.init (Array.length g.edges) (fun _ -> [| 1 + Rng.int rng a |])

(* Old Tgraph.create, directed single-label case: emit per edge, sort
   an index permutation by label with a comparator closure, permute all
   four stream arrays, then build the boxed crossing caches. *)
let tgraph_create g labels =
  let total = Array.length g.edges in
  let te_src = Array.make total 0 in
  let te_dst = Array.make total 0 in
  let te_label = Array.make total 0 in
  let te_edge = Array.make total 0 in
  let fill = ref 0 in
  Array.iteri
    (fun e (u, v) ->
      Array.iter
        (fun label ->
          te_src.(!fill) <- u;
          te_dst.(!fill) <- v;
          te_label.(!fill) <- label;
          te_edge.(!fill) <- e;
          incr fill)
        labels.(e))
    g.edges;
  let order = Array.init total (fun i -> i) in
  Array.sort (fun i j -> compare te_label.(i) te_label.(j)) order;
  let permute a = Array.map (fun i -> a.(i)) order in
  let te_src = permute te_src
  and te_dst = permute te_dst
  and te_label = permute te_label
  and te_edge = permute te_edge in
  let out_cache =
    Array.init g.n (fun v ->
        Array.map (fun (e, target) -> (e, target, labels.(e))) g.out_adj.(v))
  in
  { graph = g; te_src; te_dst; te_label; te_edge; out_cache }

let iter_time_edges t f =
  for i = 0 to Array.length t.te_label - 1 do
    f ~src:t.te_src.(i) ~dst:t.te_dst.(i) ~label:t.te_label.(i)
      ~edge:t.te_edge.(i)
  done

(* Old Foremost.run: fresh arrival/pred arrays per source, full-stream
   closure sweep. *)
let foremost_arrivals net s =
  let n = net.graph.n in
  let arrival = Array.make n max_int in
  let pred = Array.make n (-1) in
  arrival.(s) <- 0;
  let stream_pos = ref (-1) in
  iter_time_edges net (fun ~src ~dst ~label ~edge:_ ->
      incr stream_pos;
      if arrival.(src) < label && label < arrival.(dst) then begin
        arrival.(dst) <- label;
        pred.(dst) <- !stream_pos
      end);
  ignore (Sys.opaque_identity pred);
  arrival

let eccentricity net s =
  let arrival = foremost_arrivals net s in
  let worst = ref 0 and complete = ref true in
  Array.iteri
    (fun v a ->
      if v <> s then
        if a = max_int then complete := false
        else if a > !worst then worst := a)
    arrival;
  if !complete then Some !worst else None

let instance_diameter net =
  let rec scan worst = function
    | [] -> Some worst
    | s :: rest -> (
      match eccentricity net s with
      | None -> None
      | Some e -> scan (Stdlib.max worst e) rest)
  in
  scan 0 (List.init net.graph.n Fun.id)

(* One full E1 trial at the seed's cost model: draw a normalized
   uniform assignment (a = n), build the temporal network, take the
   all-pairs temporal diameter. *)
let trial rng g =
  let net = tgraph_create g (uniform_single rng g ~a:g.n) in
  instance_diameter net
