(* Benchmark harness.

   Part 1 regenerates every experiment table of the reproduction (the
   paper has no numeric tables of its own — each theorem's experiment is
   the "table"; see DESIGN.md and EXPERIMENTS.md).  Part 2 measures the
   sequential-vs-parallel wall time of E1 on the domain pool and checks
   the outputs are byte-identical.  Part 3 runs Bechamel
   micro-benchmarks of the core algorithms, one Test.make per operation.

   Run with:  dune exec bench/main.exe            (full scale)
              dune exec bench/main.exe -- --quick (reduced scale)
              dune exec bench/main.exe -- --no-micro / --no-tables / --no-speedup
              dune exec bench/main.exe -- --jobs 4
              dune exec bench/main.exe -- --metrics --trace out.jsonl

   Part 2c is the fault soak: E1 under an armed injection plan with
   retries, byte-compared against the fault-free render — the
   determinism-under-faults contract, timed so the retry overhead is
   visible. *)

module Rng = Prng.Rng
open Temporal

(* ------------------------------------------------------------------ *)
(* Options.  One pass over argv; anything unrecognized is a usage
   error, so a typo ("--no-mirco") fails loudly instead of silently
   running the full suite. *)

type opts = {
  mutable quick : bool;
  mutable no_micro : bool;
  mutable no_tables : bool;
  mutable no_speedup : bool;
  mutable no_store : bool;
  mutable no_faults : bool;
  mutable no_kernel : bool;
  mutable no_batch : bool;
  mutable no_implicit : bool;
  mutable no_serve : bool;
  mutable no_serve_sharded : bool;
  mutable metrics : bool;
  mutable trace : string option;
  mutable jobs : int option;
  mutable backend : Sim.Backend.t;
  mutable only : string list;
}

(* --only names, in execution order.  Each maps to the corresponding
   --no-* flag; selecting any section turns every other one off. *)
let sections =
  [
    "tables"; "speedup"; "store"; "faults"; "implicit"; "batch"; "serve";
    "serve-sharded"; "kernel"; "micro";
  ]

let usage_lines =
  [
    "usage: bench [options]";
    "";
    "  --quick        reduced scale (smaller sizes, shorter quotas)";
    "  --no-tables    skip part 1 (experiment tables)";
    "  --no-speedup   skip part 2 (E1 sequential-vs-parallel timing)";
    "  --no-store     skip part 2b (E1 cold vs warm result store)";
    "  --no-faults    skip part 2c (E1 fault soak: injected faults + retries)";
    "  --no-kernel    skip part 2d (flat kernel vs seed baseline, writes";
    "                 BENCH_clique.json)";
    "  --no-batch     skip part 2e (batch-kernel: scalar vs bit-parallel";
    "                 all-pairs diameter)";
    "  --no-implicit  skip part 2f (dense vs implicit backend: trial time";
    "                 and peak RSS on the same derived instances)";
    "  --no-serve     skip part 2g (ephemeral serve: sustained qps and";
    "                 tail latency, dense vs implicit)";
    "  --no-serve-sharded";
    "                 skip part 2h (sharded serve: qps scale-out at";
    "                 1/2/4 shard workers, real binary, oracle-checked)";
    "  --no-micro     skip part 3 (Bechamel micro-benchmarks)";
    "  --only S       run section S alone (repeatable; tables, speedup,";
    "                 store, faults, implicit, batch, serve, serve-sharded,";
    "                 kernel, micro).  BENCH_clique.json is written by the";
    "                 kernel section, so pair data sections with it if the";
    "                 JSON is wanted.";
    "  --backend B    run the experiment tables (part 1) under backend B";
    "                 (dense | implicit; default dense)";
    "  --jobs N, -j N worker domains for trial execution (default: 4";
    "                 for the speedup run, EPHEMERAL_JOBS or the";
    "                 recommended domain count elsewhere)";
    "  --metrics      collect telemetry and print an end-of-run summary";
    "  --trace FILE   write completed spans as JSONL to FILE";
    "  --help         show this message";
  ]

let usage_error msg =
  Printf.eprintf "bench: %s\n" msg;
  List.iter (Printf.eprintf "%s\n") usage_lines;
  exit 2

let parse_args () =
  let o =
    {
      quick = false;
      no_micro = false;
      no_tables = false;
      no_speedup = false;
      no_store = false;
      no_faults = false;
      no_kernel = false;
      no_batch = false;
      no_implicit = false;
      no_serve = false;
      no_serve_sharded = false;
      metrics = false;
      trace = None;
      jobs = None;
      backend = Sim.Backend.Dense;
      only = [];
    }
  in
  let argv = Sys.argv in
  let n = Array.length argv in
  let value flag i =
    if i + 1 >= n then usage_error (Printf.sprintf "%s needs a value" flag)
    else argv.(i + 1)
  in
  let int_value flag i =
    match int_of_string_opt (value flag i) with
    | Some v when v >= 1 -> v
    | Some _ -> usage_error (Printf.sprintf "%s must be >= 1" flag)
    | None -> usage_error (Printf.sprintf "%s needs an integer" flag)
  in
  let rec go i =
    if i < n then
      match argv.(i) with
      | "--quick" -> o.quick <- true; go (i + 1)
      | "--no-micro" -> o.no_micro <- true; go (i + 1)
      | "--no-tables" -> o.no_tables <- true; go (i + 1)
      | "--no-speedup" -> o.no_speedup <- true; go (i + 1)
      | "--no-store" -> o.no_store <- true; go (i + 1)
      | "--no-faults" -> o.no_faults <- true; go (i + 1)
      | "--no-kernel" -> o.no_kernel <- true; go (i + 1)
      | "--no-batch" -> o.no_batch <- true; go (i + 1)
      | "--no-implicit" -> o.no_implicit <- true; go (i + 1)
      | "--no-serve" -> o.no_serve <- true; go (i + 1)
      | "--no-serve-sharded" -> o.no_serve_sharded <- true; go (i + 1)
      | "--only" ->
        let s = value "--only" i in
        if not (List.mem s sections) then
          usage_error
            (Printf.sprintf "--only %S: expected one of %s" s
               (String.concat ", " sections));
        o.only <- s :: o.only;
        go (i + 2)
      | "--backend" ->
        (match Sim.Backend.of_string (value "--backend" i) with
        | Some b -> o.backend <- b
        | None -> usage_error "--backend must be dense or implicit");
        go (i + 2)
      | "--metrics" -> o.metrics <- true; go (i + 1)
      | "--trace" -> o.trace <- Some (value "--trace" i); go (i + 2)
      | ("--jobs" | "-j") as flag -> o.jobs <- Some (int_value flag i); go (i + 2)
      | "--help" | "-h" ->
        List.iter print_endline usage_lines;
        exit 0
      | arg -> usage_error (Printf.sprintf "unknown option %S" arg)
  in
  go 1;
  (if o.only <> [] then
     let off s = not (List.mem s o.only) in
     o.no_tables <- off "tables";
     o.no_speedup <- off "speedup";
     o.no_store <- off "store";
     o.no_faults <- off "faults";
     o.no_implicit <- off "implicit";
     o.no_batch <- off "batch";
     o.no_serve <- off "serve";
     o.no_serve_sharded <- off "serve-sharded";
     o.no_kernel <- off "kernel";
     o.no_micro <- off "micro");
  o

let opts = parse_args ()
let quick = opts.quick

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables *)

let run_tables () =
  print_endline
    "=================================================================";
  print_endline
    " Reproduction tables: one experiment per theorem/figure of the";
  print_endline
    " paper (Akrida, Gasieniec, Mertzios, Spirakis; SPAA 2014)";
  print_endline
    "=================================================================";
  print_newline ();
  List.iter
    (fun exp ->
      ignore
        (Sim.Report.run_and_print ~quick ~seed:Sim.Experiments.default_seed exp))
    Sim.Experiments.all

(* ------------------------------------------------------------------ *)
(* Part 2: sequential-vs-parallel speedup on E1 (quick scale).

   Runs the same experiment at --jobs 1 and at the requested job count,
   checks the rendered outcomes byte for byte (the determinism
   contract), and reports the wall-time ratio.  Speedup above 1 needs
   actual cores: on a single-core host the parallel leg only adds
   scheduling overhead, and the printed ratio will honestly say so. *)

let speedup_jobs = match opts.jobs with Some j -> j | None -> 4

let run_speedup () =
  print_endline
    "=================================================================";
  Printf.printf " E1 --quick: sequential vs parallel (%d domains, %d available)\n"
    speedup_jobs (Domain.recommended_domain_count ());
  print_endline
    "=================================================================";
  match Sim.Experiments.find "e1" with
  | None -> print_endline "e1 not registered; skipping"
  | Some e1 ->
    let restore = Exec.Config.jobs () in
    let time_run jobs =
      Exec.Pool.set_jobs jobs;
      let t0 = Unix.gettimeofday () in
      let outcome = e1.run ~quick:true ~seed:Sim.Experiments.default_seed in
      let dt = Unix.gettimeofday () -. t0 in
      (Sim.Outcome.render outcome, dt)
    in
    ignore (time_run 1);  (* warm-up: page in code and the allocator *)
    let seq_render, seq_t = time_run 1 in
    let par_render, par_t = time_run speedup_jobs in
    Printf.printf "  sequential (-j 1) : %7.3f s\n" seq_t;
    Printf.printf "  parallel   (-j %d) : %7.3f s\n" speedup_jobs par_t;
    Printf.printf "  speedup           : %5.2fx\n" (seq_t /. par_t);
    Printf.printf "  outputs identical : %s\n"
      (if String.equal seq_render par_render then "yes" else "NO (BUG)");
    Exec.Pool.set_jobs restore;
    print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2b: cold vs warm result store on E1 (quick scale).

   Cold = compute + encode + publish; warm = read + verify + decode.
   The ratio is what `ephemeral run --cache` buys on a repeat run, and
   the byte check is the store's correctness claim: a hit renders
   identically to the run it replaced. *)

let run_store_bench () =
  print_endline
    "=================================================================";
  print_endline " E1 --quick: cold vs warm result store";
  print_endline
    "=================================================================";
  match Sim.Experiments.find "e1" with
  | None -> print_endline "e1 not registered; skipping"
  | Some e1 ->
    let dir = Filename.temp_file "ephemeral-bench" ".store" in
    Sys.remove dir;
    let store = Store.Objects.open_ ~dir in
    let seed = Sim.Experiments.default_seed in
    let t0 = Unix.gettimeofday () in
    let outcome = e1.run ~quick:true ~seed in
    Sim.Cache.put store e1 ~seed ~quick:true outcome;
    let cold_t = Unix.gettimeofday () -. t0 in
    let t1 = Unix.gettimeofday () in
    let cached = Sim.Cache.get store e1 ~seed ~quick:true in
    let warm_t = Unix.gettimeofday () -. t1 in
    (match cached with
    | None -> print_endline "  warm read MISSED (BUG)"
    | Some c ->
      Printf.printf "  cold (run+publish) : %9.4f s\n" cold_t;
      Printf.printf "  warm (read+decode) : %9.4f s  (%.0fx)\n" warm_t
        (cold_t /. Float.max 1e-9 warm_t);
      Printf.printf "  outputs identical  : %s\n"
        (if String.equal (Sim.Outcome.render outcome) (Sim.Outcome.render c)
         then "yes"
         else "NO (BUG)"));
    Store.Fsio.remove_tree dir;
    print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2c: fault soak on E1 (quick scale).

   Runs E1 fault-free, then again with an armed injection plan
   (retryable trial faults, delays, poisoned workers) under supervised
   retries, and byte-compares the renders.  This is the robustness
   contract measured: retries replay each trial from a copy of its
   pristine pre-split stream, so injected faults must cost wall time
   only, never a single differing byte. *)

let run_fault_soak () =
  print_endline
    "=================================================================";
  print_endline " E1 --quick: fault soak (injected faults + retries vs clean)";
  print_endline
    "=================================================================";
  match Sim.Experiments.find "e1" with
  | None -> print_endline "e1 not registered; skipping"
  | Some e1 ->
    let time_run () =
      let t0 = Unix.gettimeofday () in
      let outcome = e1.run ~quick:true ~seed:Sim.Experiments.default_seed in
      let dt = Unix.gettimeofday () -. t0 in
      (Sim.Outcome.render outcome, dt)
    in
    let clean_render, clean_t = time_run () in
    let spec = "seed=42,trial=0.1,delay=0.05,delay-ms=1,poison=0.3" in
    let plan =
      match Fault.Spec.parse spec with
      | Ok plan -> plan
      | Error msg -> failwith ("bench fault spec: " ^ msg)
    in
    Fault.Inject.arm plan;
    Sim.Supervise.configure
      {
        Sim.Supervise.max_retries = 5;
        trial_timeout = None;
        run_deadline = None;
        keep_going = false;
      };
    let fault_render, fault_t = time_run () in
    Fault.Inject.disarm ();
    Sim.Supervise.configure Sim.Supervise.default;
    let count name = Obs.Metrics.count (Obs.Metrics.counter name) in
    Printf.printf "  plan               : %s\n" spec;
    Printf.printf "  clean run          : %7.3f s\n" clean_t;
    Printf.printf "  faulted run        : %7.3f s  (%.2fx)\n" fault_t
      (fault_t /. Float.max 1e-9 clean_t);
    Printf.printf "  faults injected    : %d\n" (count "faults.injected");
    Printf.printf "  trials retried     : %d\n" (count "trials.retried");
    Printf.printf "  workers poisoned   : %d\n" (count "pool.workers_poisoned");
    Printf.printf "  outputs identical  : %s\n"
      (if String.equal clean_render fault_render then "yes" else "NO (BUG)");
    print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2e (run before 2d so its numbers land in BENCH_clique.json):
   bit-parallel batch kernel vs per-source scalar sweeps.

   One fixed normalized-uniform clique instance per size, all-pairs
   temporal diameter both ways: Distance.instance_diameter_scalar does n
   foremost sweeps, Distance.instance_diameter does ceil(n/W) batched
   ones over the same stream.  Same instance in both legs, so the
   diameters must be equal — the agreement bit is the bench's oracle —
   and the ratio isolates the word-parallel win itself. *)

type batch_point = {
  bp_n : int;
  bp_scalar_ns : float;
  bp_batch_ns : float;
  bp_speedup : float;
  bp_agree : bool;
}

let batch_points : batch_point list ref = ref []
let batch_sizes () = if quick then [ 256; 512 ] else [ 512; 2048; 8192 ]

(* Mean ns and allocated bytes per call over [trials] calls (shared by
   parts 2e and 2d). *)
let measure ~trials f =
  let bytes0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let last = ref None in
  for _ = 1 to trials do
    last := f ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let bytes = Gc.allocated_bytes () -. bytes0 in
  ( !last,
    dt /. float_of_int trials *. 1e9,
    bytes /. float_of_int trials )

let run_batch_bench () =
  print_endline
    "=================================================================";
  Printf.printf
    " Batch kernel: scalar vs bit-parallel all-pairs TD (W = %d lanes)\n"
    Batch.lane_width;
  print_endline
    "=================================================================";
  List.iter
    (fun n ->
      let g = Sgraph.Gen.clique Directed n in
      let net = Assignment.normalized_uniform (Rng.create 211) g in
      (* The scalar leg repeats n sweeps per run, so keep its trial
         count low at the big sizes; the batched leg is cheap enough to
         average a few runs everywhere. *)
      let scalar_trials = if n >= 2048 then 1 else if quick then 2 else 3 in
      let batch_trials = if quick then 2 else 3 in
      ignore (Distance.instance_diameter net);  (* warm-up sizes the lane workspace *)
      let batch_out, batch_ns, _ =
        measure ~trials:batch_trials (fun () -> Distance.instance_diameter net)
      in
      let scalar_out, scalar_ns, _ =
        measure ~trials:scalar_trials (fun () ->
            Distance.instance_diameter_scalar net)
      in
      let agree = batch_out = scalar_out in
      let speedup = scalar_ns /. Float.max 1. batch_ns in
      Printf.printf
        "  n=%5d  scalar %12.0f ns/run  batched %12.0f ns/run  %6.2fx  agree: %s\n"
        n scalar_ns batch_ns speedup
        (if agree then "yes" else "NO (BUG)");
      batch_points :=
        {
          bp_n = n;
          bp_scalar_ns = scalar_ns;
          bp_batch_ns = batch_ns;
          bp_speedup = speedup;
          bp_agree = agree;
        }
        :: !batch_points)
    (batch_sizes ());
  batch_points := List.rev !batch_points;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2f (also before 2d, for the same reason): dense vs implicit
   backend on the E1 trial pipeline.

   One trial = realise a derived normalized-uniform directed-clique
   instance from a fresh 64-bit seed and compute its exact all-pairs
   temporal diameter.  The implicit leg keeps the instance lazy
   (arithmetic topology, labels rolled on demand behind the prefix
   stream); the dense leg materializes the same instance (CSR clique,
   stored label array, full counting-sorted stream) first.  Identical
   seeds per trial, so the diameters must agree — the backend
   equivalence oracle, run as a bench.

   Peak RSS comes from /proc/self/status VmHWM, which is a monotone
   high-water mark for the whole process: the implicit leg therefore
   runs FIRST, so its reading bounds the implicit working set, and
   the dense leg's (higher) reading shows what materialization adds
   on top.  On hosts without procfs both read 0 and only the timing
   rows are meaningful. *)

type backend_point = {
  ib_n : int;
  ib_dense_ns : float;
  ib_implicit_ns : float;
  ib_ratio : float;
  ib_agree : bool;
  ib_implicit_hwm_kb : int;
  ib_dense_hwm_kb : int;
}

let backend_points : backend_point list ref = ref []
let backend_sizes () = if quick then [ 512; 1024 ] else [ 1024; 2048; 4096 ]

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          try Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d"
                Fun.id
          with Scanf.Scan_failure _ | Failure _ -> 0
        else scan ()
    in
    let v = scan () in
    close_in ic;
    v

let run_implicit_bench () =
  print_endline
    "=================================================================";
  print_endline
    " Backend: dense (materialized) vs implicit (derived labels), same seeds";
  print_endline
    "=================================================================";
  List.iter
    (fun n ->
      let trials = if quick then 2 else 3 in
      let seed = 409 in
      let impl_out, impl_ns, _ =
        measure ~trials (fun () ->
            let rng = Rng.create seed in
            let g = Sgraph.Gen.clique_implicit Directed n in
            Distance.instance_diameter
              (Assignment.uniform_single_implicit rng g ~a:n))
      in
      let impl_hwm = peak_rss_kb () in
      let dense_out, dense_ns, _ =
        measure ~trials (fun () ->
            let rng = Rng.create seed in
            let g = Sgraph.Gen.clique Directed n in
            Distance.instance_diameter
              (Tgraph.materialize
                 (Assignment.uniform_single_implicit rng g ~a:n)))
      in
      let dense_hwm = peak_rss_kb () in
      let agree = impl_out = dense_out in
      let ratio = dense_ns /. Float.max 1. impl_ns in
      Printf.printf
        "  n=%5d  dense %12.0f ns/trial  implicit %12.0f ns/trial  %6.2fx  \
         agree: %s\n"
        n dense_ns impl_ns ratio
        (if agree then "yes" else "NO (BUG)");
      Printf.printf
        "           peak RSS after implicit leg %d KiB, after dense leg %d KiB\n"
        impl_hwm dense_hwm;
      backend_points :=
        {
          ib_n = n;
          ib_dense_ns = dense_ns;
          ib_implicit_ns = impl_ns;
          ib_ratio = ratio;
          ib_agree = agree;
          ib_implicit_hwm_kb = impl_hwm;
          ib_dense_hwm_kb = dense_hwm;
        }
        :: !backend_points)
    (backend_sizes ());
  backend_points := List.rev !backend_points;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2g: [ephemeral serve] sustained throughput (dense vs implicit).

   An in-process server (Server.run_background) over a Unix socket on
   an n=1024 clique corpus, hammered by concurrent blocking clients
   issuing foremost queries with rotating sources.  The row cache is
   on (the service default), so past the first rotation this measures
   the serving path — framing, admission, dispatch, cache readout —
   which is exactly what a deployment sustains; p50/p99 come from the
   full per-query latency population.  Results ride along in
   BENCH_clique.json under "serve". *)

type serve_point = {
  sv_backend : string;
  sv_queries : int;
  sv_qps : float;
  sv_p50_ms : float;
  sv_p99_ms : float;
}

let serve_points : serve_point list ref = ref []

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let run_serve_bench () =
  print_endline
    "=================================================================";
  let n = if quick then 256 else 1024 in
  let clients = 4 and per_client = if quick then 100 else 400 in
  Printf.printf
    " ephemeral serve: sustained qps (clique n=%d, %d clients x %d queries)\n"
    n clients per_client;
  print_endline
    "=================================================================";
  List.iter
    (fun backend ->
      let corpus =
        Serve.Corpus.load ~backend
          [ Printf.sprintf "id=clq,family=clique,n=%d,a=%d,r=1,seed=7" n n ]
      in
      let dir = Filename.temp_file "ephemeral-bench" ".serve" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let address = Serve.Server.Unix_path (Filename.concat dir "srv.sock") in
      let config =
        {
          Serve.Server.default_config with
          Serve.Server.address;
          engine =
            { Serve.Engine.default_config with Serve.Engine.queue_max = 256 };
        }
      in
      let stop = Serve.Server.run_background ~config corpus in
      let latencies = Array.make (clients * per_client) 0. in
      let client_loop c =
        match Serve.Client.connect ~timeout_s:10. address with
        | Error m -> failwith ("serve bench: connect: " ^ m)
        | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close conn)
            (fun () ->
              for i = 0 to per_client - 1 do
                let source = (c + (i * clients)) mod n in
                let req =
                  Serve.Proto.Foremost
                    {
                      Serve.Proto.instance = "clq";
                      source;
                      target = (source + 1) mod n;
                      deadline_ms = 0;
                    }
                in
                let t0 = Unix.gettimeofday () in
                (match Serve.Client.call ~timeout_s:10. conn req with
                | Ok (Serve.Proto.Ok_value _) -> ()
                | Ok r ->
                  failwith
                    ("serve bench: unexpected reply "
                    ^ Serve.Proto.render_response r)
                | Error m -> failwith ("serve bench: call: " ^ m));
                latencies.((c * per_client) + i) <-
                  (Unix.gettimeofday () -. t0) *. 1e3
              done)
      in
      let t0 = Unix.gettimeofday () in
      let threads = List.init clients (fun c -> Thread.create client_loop c) in
      List.iter Thread.join threads;
      let wall_s = Unix.gettimeofday () -. t0 in
      stop ();
      Store.Fsio.remove_tree dir;
      let sorted = Array.copy latencies in
      Array.sort compare sorted;
      let queries = clients * per_client in
      let qps = float_of_int queries /. Float.max 1e-9 wall_s in
      let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
      Printf.printf
        "  %-8s : %6.0f q/s   p50 %6.3f ms   p99 %6.3f ms   (%d queries)\n"
        (Sim.Backend.to_string backend)
        qps p50 p99 queries;
      serve_points :=
        {
          sv_backend = Sim.Backend.to_string backend;
          sv_queries = queries;
          sv_qps = qps;
          sv_p50_ms = p50;
          sv_p99_ms = p99;
        }
        :: !serve_points)
    [ Sim.Backend.Dense; Sim.Backend.Implicit ];
  serve_points := List.rev !serve_points;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2h: sharded serve scale-out (the real binary, 1/2/4 shards).

   Spawns `ephemeral serve --shards S` — the actual CLI, router and
   shard workers as separate OS processes — over an 8-instance clique
   corpus with a cold result store, and hammers it with concurrent
   clients whose foremost queries rotate across instances and sources.
   Every reply is checked against an in-process oracle over the
   identical corpus, so a routing bug (a query answered by a shard
   that does not own the instance) fails loudly, not silently.

   What scale-out is available depends on the host: shard processes
   overlap per-query compute only when there are physical cores to run
   them on, and overlap durable-publish fsync waits regardless.  The
   host's core count is recorded in the JSON next to the measured
   points precisely so a reader (or CI) can tell "sharding is broken"
   apart from "this box has one core". *)

type sharded_point = {
  sh_shards : int;
  sh_queries : int;
  sh_qps : float;
  sh_p50_ms : float;
  sh_p99_ms : float;
  sh_ok : bool;
}

let sharded_points : sharded_point list ref = ref []
let host_cores = Domain.recommended_domain_count ()

let serve_exe () =
  match Sys.getenv_opt "EPHEMERAL_EXE" with
  | Some p when Sys.file_exists p -> Some p
  | _ ->
    let cand =
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/main.exe"
    in
    if Sys.file_exists cand then Some cand else None

let run_serve_sharded_bench () =
  print_endline
    "=================================================================";
  (* The regime where sharding pays: a COLD store-backed corpus.  Every
     query hits a distinct (instance, source) pair, so each one is
     computed once and durably published — object write + fsync +
     manifest append — before the dispatcher moves on.  One process has
     one dispatcher, so publishes serialize; shard workers overlap
     those device waits (and, on multi-core hosts, the compute too).
     This is exactly the first pass of `serve --store` over a corpus,
     populating the persistent row cache under live traffic.  The
     instance ids c0..c7 hash 2-per-shard at 4 shards (hence 4-per at
     2), so ownership is balanced and no shard caps the scale-out. *)
  let n = 256 and instances = 8 in
  let clients = 32 and per_client = if quick then 25 else 64 in
  let sources_per_inst = clients * per_client / instances in
  Printf.printf
    " ephemeral serve --shards: cold-store qps scale-out (%d implicit \
     clique\n\
    \ instances n=%d, %d clients x %d one-shot queries, -j 1 per shard)\n"
    instances n clients per_client;
  print_endline
    "=================================================================";
  match serve_exe () with
  | None ->
    print_endline
      "  bin/main.exe not found next to the bench (set EPHEMERAL_EXE); \
       skipping";
    print_newline ()
  | Some exe ->
    let spec i =
      Printf.sprintf "id=c%d,family=clique,n=%d,a=%d,r=1,seed=%d" i n n (7 + i)
    in
    let spec_lines = List.init instances spec in
    (* The oracle: the same corpus, built in-process, arrival rows for
       the sources the clients will use. *)
    let oracle =
      Array.of_list
        (List.map
           (fun line ->
             match
               Serve.Corpus.available
                 (Serve.Corpus.load ~backend:Sim.Backend.Implicit [ line ])
             with
             | [ (_, net) ] ->
               Array.init sources_per_inst (fun s ->
                   Array.sub
                     (Temporal.Foremost.arrivals_borrowed net s)
                     0 n)
             | _ -> failwith "sharded bench: oracle corpus failed to load")
           spec_lines)
    in
    List.iter
      (fun shards ->
        let dir = Filename.temp_file "ephemeral-bench" ".sharded" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        let socket = Filename.concat dir "srv.sock" in
        (* Fresh store per leg: every leg starts cold and publishes the
           same row set, so the shard counts do identical work. *)
        let args =
          [ "serve"; "--socket"; socket; "--backend"; "implicit";
            "--queue-max"; "128"; "--jobs"; "1";
            "--store"; Filename.concat dir "store";
            "--shards"; string_of_int shards ]
          @ List.concat_map (fun s -> [ "--instance"; s ]) spec_lines
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let pid =
          Unix.create_process exe
            (Array.of_list (exe :: args))
            Unix.stdin devnull Unix.stderr
        in
        Unix.close devnull;
        (* Readiness: the router binds its socket only once every shard
           answered PING, so a successful PING here means fully up. *)
        let address = Serve.Server.Unix_path socket in
        let deadline = Unix.gettimeofday () +. 30. in
        let rec await () =
          if Unix.gettimeofday () > deadline then
            failwith "sharded bench: server never became ready"
          else
            match Serve.Client.connect ~timeout_s:0.2 address with
            | Ok c ->
              let r = Serve.Client.call ~timeout_s:1. c Serve.Proto.Ping in
              Serve.Client.close c;
              (match r with
              | Ok Serve.Proto.Ok_empty -> ()
              | _ -> Unix.sleepf 0.02; await ())
            | Error _ -> Unix.sleepf 0.02; await ()
        in
        await ();
        let latencies = Array.make (clients * per_client) 0. in
        let mismatches = Atomic.make 0 in
        let client_loop c =
          match Serve.Client.connect ~timeout_s:10. address with
          | Error m -> failwith ("sharded bench: connect: " ^ m)
          | Ok conn ->
            Fun.protect
              ~finally:(fun () -> Serve.Client.close conn)
              (fun () ->
                for i = 0 to per_client - 1 do
                  (* Global pair index: every query in the run targets a
                     distinct (instance, source), so nothing is served
                     from a warm cache or a prior publish. *)
                  let p = (c * per_client) + i in
                  let inst = p mod instances in
                  let source = p / instances in
                  let target = ((source * 7) + 3) mod n in
                  let req =
                    Serve.Proto.Foremost
                      {
                        Serve.Proto.instance = Printf.sprintf "c%d" inst;
                        source;
                        target;
                        deadline_ms = 0;
                      }
                  in
                  let expected =
                    let a = oracle.(inst).(source).(target) in
                    if a = max_int then None else Some a
                  in
                  let t0 = Unix.gettimeofday () in
                  (match Serve.Client.call ~timeout_s:30. conn req with
                  | Ok (Serve.Proto.Ok_value v) ->
                    if v <> expected then Atomic.incr mismatches
                  | Ok _ | Error _ -> Atomic.incr mismatches);
                  latencies.((c * per_client) + i) <-
                    (Unix.gettimeofday () -. t0) *. 1e3
                done)
        in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init clients (fun c -> Thread.create client_loop c)
        in
        List.iter Thread.join threads;
        let wall_s = Unix.gettimeofday () -. t0 in
        Unix.kill pid Sys.sigterm;
        let _, status = Unix.waitpid [] pid in
        Store.Fsio.remove_tree dir;
        (match status with
        | Unix.WEXITED 0 -> ()
        | _ -> Printf.printf "  WARNING: server at %d shards exited dirty\n"
                 shards);
        let sorted = Array.copy latencies in
        Array.sort compare sorted;
        let queries = clients * per_client in
        let qps = float_of_int queries /. Float.max 1e-9 wall_s in
        let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
        let ok = Atomic.get mismatches = 0 in
        Printf.printf
          "  shards=%d : %6.0f q/s   p50 %6.3f ms   p99 %6.3f ms   replies \
           ok: %s\n"
          shards qps p50 p99
          (if ok then "yes" else "NO (BUG)");
        sharded_points :=
          {
            sh_shards = shards;
            sh_queries = queries;
            sh_qps = qps;
            sh_p50_ms = p50;
            sh_p99_ms = p99;
            sh_ok = ok;
          }
          :: !sharded_points)
      [ 1; 2; 4 ];
    sharded_points := List.rev !sharded_points;
    (match !sharded_points with
    | [ one; _; four ] when one.sh_qps > 0. ->
      Printf.printf "  scale-out 4/1 shards: %.2fx (host cores: %d)\n"
        (four.sh_qps /. one.sh_qps)
        host_cores;
      if host_cores < 4 then
        Printf.printf
          "  note: %d-core host — shards can only overlap durability \
           waits,\n\
          \  not compute; expect near-linear scale-out on >= 4 cores\n"
          host_cores
    | _ -> ());
    print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2d: flat kernel vs seed baseline on the E1 clique pipeline.

   One trial = draw a normalized uniform assignment on the directed
   clique, build the temporal network, compute the all-pairs temporal
   diameter.  The legacy leg replays the seed implementations
   (Legacy_kernel: cons-list generator, boxed tuple adjacency,
   comparator-sorted stream with permutation copies, per-source
   allocating sweeps); the flat leg is the live library (trusted-array
   generator, counting sort, CSR crossings, per-domain workspaces).
   Both legs draw from identically seeded RNGs, so the diameters must
   agree trial for trial — a built-in equivalence oracle.

   Results land in BENCH_clique.json (machine-readable: ns/op, bytes
   allocated per op, speedup) for the CI perf-smoke job. *)

let kernel_n = 512
let kernel_trials () = if quick then 3 else 10

let run_kernel_bench () =
  print_endline
    "=================================================================";
  Printf.printf
    " E1 kernel: flat core vs seed baseline (clique n=%d, %d trials)\n"
    kernel_n (kernel_trials ());
  print_endline
    "=================================================================";
  let trials = kernel_trials () in
  let seed = 97 in
  let legacy_g = Legacy_kernel.clique kernel_n in
  let flat_g = Sgraph.Gen.clique Directed kernel_n in
  (* Warm-up: fault in code paths and size the workspace. *)
  ignore (Legacy_kernel.trial (Rng.create seed) legacy_g);
  ignore
    (Distance.instance_diameter
       (Assignment.normalized_uniform (Rng.create seed) flat_g));
  let legacy_rng = Rng.create seed and flat_rng = Rng.create seed in
  let legacy_out, legacy_ns, legacy_bytes =
    measure ~trials (fun () -> Legacy_kernel.trial legacy_rng legacy_g)
  in
  let flat_out, flat_ns, flat_bytes =
    measure ~trials (fun () ->
        Distance.instance_diameter
          (Assignment.normalized_uniform flat_rng flat_g))
  in
  let agree = legacy_out = flat_out in
  let speedup = legacy_ns /. Float.max 1. flat_ns in
  Printf.printf "  legacy (seed)  : %12.0f ns/trial  %12.0f bytes/trial\n"
    legacy_ns legacy_bytes;
  Printf.printf "  flat kernel    : %12.0f ns/trial  %12.0f bytes/trial\n"
    flat_ns flat_bytes;
  Printf.printf "  speedup        : %5.2fx   alloc ratio: %5.2fx\n" speedup
    (legacy_bytes /. Float.max 1. flat_bytes);
  Printf.printf "  diameters agree: %s\n" (if agree then "yes" else "NO (BUG)");
  let path = "BENCH_clique.json" in
  let oc = open_out path in
  (* Part 2e's scalar-vs-batched points ride along in a "batch" array
     (empty under --no-batch), one object per size. *)
  let batch_json =
    match !batch_points with
    | [] -> "[]"
    | points ->
      "[\n"
      ^ String.concat ",\n"
          (List.map
             (fun p ->
               Printf.sprintf
                 "    { \"n\": %d, \"scalar_ns_per_run\": %.0f, \
                  \"batch_ns_per_run\": %.0f, \"speedup\": %.2f, \
                  \"agree\": %b }"
                 p.bp_n p.bp_scalar_ns p.bp_batch_ns p.bp_speedup p.bp_agree)
             points)
      ^ "\n  ]"
  in
  (* Part 2g's serving-path points land in a "serve" array (empty
     under --no-serve). *)
  let serve_json =
    match !serve_points with
    | [] -> "[]"
    | points ->
      "[\n"
      ^ String.concat ",\n"
          (List.map
             (fun p ->
               Printf.sprintf
                 "    { \"backend\": \"%s\", \"queries\": %d, \"qps\": %.0f, \
                  \"p50_ms\": %.3f, \"p99_ms\": %.3f }"
                 p.sv_backend p.sv_queries p.sv_qps p.sv_p50_ms p.sv_p99_ms)
             points)
      ^ "\n  ]"
  in
  (* Part 2h's scale-out points land in a "serve_sharded" object (null
     under --no-serve-sharded or when the binary was not found).  The
     host core count rides along: qps scale-out is a property of the
     (binary, host) pair, and a 1-core box physically cannot overlap
     shard compute — only durability waits — so the ratio is
     meaningless without it. *)
  let serve_sharded_json =
    match !sharded_points with
    | [] -> "null"
    | points ->
      let ratio =
        match points with
        | one :: _ when one.sh_qps > 0. ->
          let four = List.nth points (List.length points - 1) in
          four.sh_qps /. one.sh_qps
        | _ -> 0.
      in
      Printf.sprintf "{\n    \"host_cores\": %d,\n    \"scale_out\": %.2f,\n    \"points\": [\n"
        host_cores ratio
      ^ String.concat ",\n"
          (List.map
             (fun p ->
               Printf.sprintf
                 "      { \"shards\": %d, \"queries\": %d, \"qps\": %.0f, \
                  \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"replies_ok\": %b }"
                 p.sh_shards p.sh_queries p.sh_qps p.sh_p50_ms p.sh_p99_ms
                 p.sh_ok)
             points)
      ^ "\n    ]\n  }"
  in
  (* Part 2f's dense-vs-implicit points land in a "backends" array
     (empty under --no-implicit). *)
  let backends_json =
    match !backend_points with
    | [] -> "[]"
    | points ->
      "[\n"
      ^ String.concat ",\n"
          (List.map
             (fun p ->
               Printf.sprintf
                 "    { \"n\": %d, \"dense_ns_per_trial\": %.0f, \
                  \"implicit_ns_per_trial\": %.0f, \
                  \"dense_over_implicit\": %.2f, \"agree\": %b, \
                  \"implicit_peak_rss_kb\": %d, \"dense_peak_rss_kb\": %d }"
                 p.ib_n p.ib_dense_ns p.ib_implicit_ns p.ib_ratio p.ib_agree
                 p.ib_implicit_hwm_kb p.ib_dense_hwm_kb)
             points)
      ^ "\n  ]"
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"e1_clique_pipeline\",\n\
    \  \"n\": %d,\n\
    \  \"trials\": %d,\n\
    \  \"quick\": %b,\n\
    \  \"legacy\": { \"ns_per_trial\": %.0f, \"bytes_per_trial\": %.0f },\n\
    \  \"flat\": { \"ns_per_trial\": %.0f, \"bytes_per_trial\": %.0f },\n\
    \  \"speedup\": %.2f,\n\
    \  \"alloc_ratio\": %.2f,\n\
    \  \"outputs_agree\": %b,\n\
    \  \"lane_width\": %d,\n\
    \  \"batch\": %s,\n\
    \  \"backends\": %s,\n\
    \  \"serve\": %s,\n\
    \  \"serve_sharded\": %s\n\
     }\n"
    kernel_n trials quick legacy_ns legacy_bytes flat_ns flat_bytes speedup
    (legacy_bytes /. Float.max 1. flat_bytes)
    agree Batch.lane_width batch_json backends_json serve_json
    serve_sharded_json;
  close_out oc;
  Printf.printf "  wrote %s\n" path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel micro-benchmarks *)

open Bechamel
open Toolkit

(* Pre-built inputs, so the staged closures measure the algorithm only. *)

let clique_net n =
  let g = Sgraph.Gen.clique Directed n in
  Assignment.normalized_uniform (Rng.create 1) g

let star_net n r =
  let g = Sgraph.Gen.star n in
  Assignment.uniform_multi (Rng.create 2) g ~a:n ~r

let micro_tests () =
  let net128 = clique_net 128 in
  let net512 = clique_net 512 in
  let star64 = star_net 64 8 in
  let grid = Sgraph.Gen.grid 16 16 in
  let clique256 = Sgraph.Gen.clique Directed 256 in
  let uclique256 = Sgraph.Gen.clique Undirected 256 in
  let params128 = Expansion.default_params ~n:128 () in
  let params512 = Expansion.default_params ~n:512 () in
  let gen_rng = Rng.create 3 in
  let test name f = Test.make ~name (Staged.stage f) in
  [
    Test.make_grouped ~name:"foremost" ~fmt:"%s %s"
      [
        test "clique n=128" (fun () -> Foremost.run net128 0);
        test "clique n=512" (fun () -> Foremost.run net512 0);
        test "star n=64 r=8" (fun () -> Foremost.run star64 0);
      ];
    Test.make_grouped ~name:"instance-diameter" ~fmt:"%s %s"
      [ test "clique n=128" (fun () -> Distance.instance_diameter net128) ];
    Test.make_grouped ~name:"construction" ~fmt:"%s %s"
      [
        test "assign+sort clique n=256" (fun () ->
            Assignment.normalized_uniform gen_rng clique256);
        test "gnp n=1024 p=2ln n/n" (fun () ->
            Sgraph.Gen.gnp gen_rng ~n:1024 ~p:(2. *. log 1024. /. 1024.));
        test "random tree n=1024" (fun () ->
            Sgraph.Gen.random_tree gen_rng 1024);
      ];
    Test.make_grouped ~name:"algorithm-1" ~fmt:"%s %s"
      [
        test "expansion n=128" (fun () ->
            Expansion.run net128 params128 ~s:0 ~t:64);
        test "expansion n=512" (fun () ->
            Expansion.run net512 params512 ~s:0 ~t:256);
      ];
    Test.make_grouped ~name:"dissemination" ~fmt:"%s %s"
      [
        test "flooding clique n=512" (fun () -> Flooding.run net512 0);
        test "push clique n=256" (fun () ->
            Phonecall.Rumor.spread gen_rng uclique256 Push ~source:0);
      ];
    Test.make_grouped ~name:"reachability" ~fmt:"%s %s"
      [
        test "treach star n=64 r=8" (fun () -> Reachability.treach star64);
        test "diameter grid 16x16" (fun () -> Sgraph.Metrics.diameter grid);
      ];
    (* Fixed per-task cost of the pool itself: the work (one array
       write per index) is trivial, so the j=4 row is almost pure
       dispatch + wakeup + gather overhead over the j=1 row. *)
    (let pool1 = Exec.Pool.create ~jobs:1 in
     let pool4 = Exec.Pool.create ~jobs:4 in
     at_exit (fun () ->
         Exec.Pool.shutdown pool1;
         Exec.Pool.shutdown pool4);
     Test.make_grouped ~name:"exec-pool" ~fmt:"%s %s"
       [
         test "map_range 1k j=1" (fun () ->
             Exec.Pool.map_range pool1 ~lo:0 ~hi:1024 (fun i -> i * i));
         test "map_range 1k j=4" (fun () ->
             Exec.Pool.map_range pool4 ~lo:0 ~hi:1024 (fun i -> i * i));
         test "reduce 1k j=4" (fun () ->
             Exec.Pool.reduce pool4 ~lo:0 ~hi:1024 ~map:(fun i -> i)
               ~fold:( + ) ~init:0);
       ]);
    (* Store hot paths: codec encode/decode of a realistic outcome
       (a few numeric tables, the shape `run --cache` persists) and
       object put/get against a throwaway on-disk store.  put is
       idempotent for identical bytes, so the measured path after the
       first iteration is hash + stat + index probe — the warm publish
       `run --cache` pays on every already-cached experiment. *)
    (let fixture_table k =
       let t =
         Stats.Table.create
           ~title:(Printf.sprintf "bench table %d" k)
           ~columns:[ "n"; "mean"; "sd"; "rate" ]
       in
       for i = 1 to 24 do
         Stats.Table.add_row t
           [
             Stats.Table.Int (i * 16);
             Stats.Table.Float (log (float_of_int (i * k + 1)), 4);
             Stats.Table.Float (sqrt (float_of_int i), 4);
             Stats.Table.Pct (1. /. float_of_int i);
           ]
       done;
       t
     in
     let outcome =
       {
         Store.Codec.tables = List.init 3 fixture_table;
         notes = [ "bench fixture"; "three tables, 24 rows each" ];
         plots = [];
       }
     in
     let encoded = Store.Codec.encode_outcome outcome in
     let big = String.make 65536 'x' in
     let dir = Filename.temp_file "ephemeral-bench" ".store" in
     Sys.remove dir;
     let bench_store = Store.Objects.open_ ~dir in
     ignore (Store.Objects.put bench_store ~key:"bench" ~meta:[] encoded);
     at_exit (fun () -> Store.Fsio.remove_tree dir);
     Test.make_grouped ~name:"store-codec" ~fmt:"%s %s"
       [
         test
           (Printf.sprintf "encode outcome %dB" (String.length encoded))
           (fun () -> Store.Codec.encode_outcome outcome);
         test "decode outcome" (fun () -> Store.Codec.decode_outcome encoded);
         test "crc32 64KiB" (fun () -> Store.Crc32.digest big);
         test "put (warm)" (fun () ->
             Store.Objects.put bench_store ~key:"bench" ~meta:[] encoded);
         test "get+verify" (fun () ->
             Store.Objects.get bench_store ~key:"bench");
         test "find" (fun () -> Store.Objects.find bench_store ~key:"bench");
       ]);
    (let wnet128 = Windows.of_tgraph net128 in
     Test.make_grouped ~name:"windows" ~fmt:"%s %s"
       [
         test "dijkstra clique n=128" (fun () ->
             Windows.earliest_arrival wnet128 0);
         test "of_tgraph clique n=128" (fun () -> Windows.of_tgraph net128);
       ]);
    (let small_net = clique_net 32 in
     Test.make_grouped ~name:"connectivity" ~fmt:"%s %s"
       [
         test "edge-disjoint clique n=32" (fun () ->
             Disjoint.max_edge_disjoint small_net ~s:0 ~t:15);
         test "expanded build clique n=32" (fun () ->
             Expanded.build small_net);
       ]);
    (let star16 =
       (* Guaranteed-reachable input for the pruner: the {1,2} scheme
          unioned with random labels. *)
       Ops.union
         (Opt.star_two_labels (Sgraph.Gen.star 16))
         (star_net 16 6)
     in
     Test.make_grouped ~name:"optimization" ~fmt:"%s %s"
       [
         test "spanner prune star n=16 r=6" (fun () -> Spanner.prune star16);
         test "betweenness star n=64 r=8" (fun () ->
             Centrality.betweenness star64);
       ]);
    Test.make_grouped ~name:"generators" ~fmt:"%s %s"
      [
        test "barabasi-albert n=1024 m=3" (fun () ->
            Sgraph.Gen.barabasi_albert gen_rng ~n:1024 ~m:3);
        test "watts-strogatz n=1024 k=4" (fun () ->
            Sgraph.Gen.watts_strogatz gen_rng ~n:1024 ~k:4 ~beta:0.1);
      ];
    (let net64 = clique_net 64 in
     Test.make_grouped ~name:"extensions" ~fmt:"%s %s"
       [
         test "restless clique n=128 d=2" (fun () ->
             Restless.run ~delta:2 net128 0);
         test "walker clique n=128" (fun () ->
             Walker.walk gen_rng net128 ~source:0);
         test "counting clique n=64" (fun () ->
             Counting.foremost_journeys net64 0);
         test "markovian flood n=128" (fun () ->
             Evolving.Edge_markovian.flood
               (Evolving.Edge_markovian.create gen_rng ~n:128 ~p_up:0.1
                  ~p_down:0.1)
               ~source:0);
       ]);
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances =
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~kde:(Some 1000) ()
  in
  let tests = micro_tests () in
  let raw_results =
    List.map (fun test -> Benchmark.all cfg instances test) tests
  in
  List.map
    (fun raw ->
      let per_instance =
        List.map (fun instance -> Analyze.all ols instance raw) instances
      in
      Analyze.merge ols instances per_instance)
    raw_results

let () =
  List.iter
    (fun instance -> Bechamel_notty.Unit.add instance (Measure.unit instance))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

let run_micro () =
  print_endline
    "=================================================================";
  print_endline " Micro-benchmarks (Bechamel, time per run via OLS)";
  print_endline
    "=================================================================";
  let open Notty_unix in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  List.iter
    (fun results -> img (window, results) |> eol |> output_image)
    (benchmark ())

let () =
  let sink =
    Option.map
      (fun path ->
        let sink =
          try Obs.Sink.open_jsonl path with
          | Sys_error msg ->
            Printf.eprintf "cannot open trace file: %s\n" msg;
            exit 1
        in
        Obs.Sink.attach sink;
        sink)
      opts.trace
  in
  if opts.metrics || Option.is_some sink then Obs.Control.set_enabled true;
  Option.iter Exec.Pool.set_jobs opts.jobs;
  Sim.Backend.set opts.backend;
  if not opts.no_tables then run_tables ();
  if not opts.no_speedup then run_speedup ();
  if not opts.no_store then run_store_bench ();
  if not opts.no_faults then run_fault_soak ();
  (* Backend comparison first: peak RSS is read from VmHWM, a
     process-lifetime high-water mark, so the implicit legs must run
     before anything that materializes a large dense instance. *)
  if not opts.no_implicit then run_implicit_bench ();
  if not opts.no_batch then run_batch_bench ();
  if not opts.no_serve then run_serve_bench ();
  if not opts.no_serve_sharded then run_serve_sharded_bench ();
  if not opts.no_kernel then run_kernel_bench ();
  if not opts.no_micro then run_micro ();
  Option.iter Obs.Sink.close sink;
  if opts.metrics then Obs.Export.print_summary ()
