(* Benchmark harness.

   Part 1 regenerates every experiment table of the reproduction (the
   paper has no numeric tables of its own — each theorem's experiment is
   the "table"; see DESIGN.md and EXPERIMENTS.md).  Part 2 runs Bechamel
   micro-benchmarks of the core algorithms, one Test.make per operation.

   Run with:  dune exec bench/main.exe            (full scale)
              dune exec bench/main.exe -- --quick (reduced scale)
              dune exec bench/main.exe -- --no-micro / --no-tables
              dune exec bench/main.exe -- --metrics --trace out.jsonl    *)

module Rng = Prng.Rng
open Temporal

let quick = Array.exists (( = ) "--quick") Sys.argv
let no_micro = Array.exists (( = ) "--no-micro") Sys.argv
let no_tables = Array.exists (( = ) "--no-tables") Sys.argv
let metrics = Array.exists (( = ) "--metrics") Sys.argv

let trace =
  let argv = Sys.argv in
  let n = Array.length argv in
  let rec find i =
    if i >= n then None
    else if argv.(i) = "--trace" && i + 1 < n then Some argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables *)

let run_tables () =
  print_endline
    "=================================================================";
  print_endline
    " Reproduction tables: one experiment per theorem/figure of the";
  print_endline
    " paper (Akrida, Gasieniec, Mertzios, Spirakis; SPAA 2014)";
  print_endline
    "=================================================================";
  print_newline ();
  List.iter
    (fun exp ->
      ignore
        (Sim.Report.run_and_print ~quick ~seed:Sim.Experiments.default_seed exp))
    Sim.Experiments.all

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks *)

open Bechamel
open Toolkit

(* Pre-built inputs, so the staged closures measure the algorithm only. *)

let clique_net n =
  let g = Sgraph.Gen.clique Directed n in
  Assignment.normalized_uniform (Rng.create 1) g

let star_net n r =
  let g = Sgraph.Gen.star n in
  Assignment.uniform_multi (Rng.create 2) g ~a:n ~r

let micro_tests () =
  let net128 = clique_net 128 in
  let net512 = clique_net 512 in
  let star64 = star_net 64 8 in
  let grid = Sgraph.Gen.grid 16 16 in
  let clique256 = Sgraph.Gen.clique Directed 256 in
  let uclique256 = Sgraph.Gen.clique Undirected 256 in
  let params128 = Expansion.default_params ~n:128 () in
  let params512 = Expansion.default_params ~n:512 () in
  let gen_rng = Rng.create 3 in
  let test name f = Test.make ~name (Staged.stage f) in
  [
    Test.make_grouped ~name:"foremost" ~fmt:"%s %s"
      [
        test "clique n=128" (fun () -> Foremost.run net128 0);
        test "clique n=512" (fun () -> Foremost.run net512 0);
        test "star n=64 r=8" (fun () -> Foremost.run star64 0);
      ];
    Test.make_grouped ~name:"instance-diameter" ~fmt:"%s %s"
      [ test "clique n=128" (fun () -> Distance.instance_diameter net128) ];
    Test.make_grouped ~name:"construction" ~fmt:"%s %s"
      [
        test "assign+sort clique n=256" (fun () ->
            Assignment.normalized_uniform gen_rng clique256);
        test "gnp n=1024 p=2ln n/n" (fun () ->
            Sgraph.Gen.gnp gen_rng ~n:1024 ~p:(2. *. log 1024. /. 1024.));
        test "random tree n=1024" (fun () ->
            Sgraph.Gen.random_tree gen_rng 1024);
      ];
    Test.make_grouped ~name:"algorithm-1" ~fmt:"%s %s"
      [
        test "expansion n=128" (fun () ->
            Expansion.run net128 params128 ~s:0 ~t:64);
        test "expansion n=512" (fun () ->
            Expansion.run net512 params512 ~s:0 ~t:256);
      ];
    Test.make_grouped ~name:"dissemination" ~fmt:"%s %s"
      [
        test "flooding clique n=512" (fun () -> Flooding.run net512 0);
        test "push clique n=256" (fun () ->
            Phonecall.Rumor.spread gen_rng uclique256 Push ~source:0);
      ];
    Test.make_grouped ~name:"reachability" ~fmt:"%s %s"
      [
        test "treach star n=64 r=8" (fun () -> Reachability.treach star64);
        test "diameter grid 16x16" (fun () -> Sgraph.Metrics.diameter grid);
      ];
    (let wnet128 = Windows.of_tgraph net128 in
     Test.make_grouped ~name:"windows" ~fmt:"%s %s"
       [
         test "dijkstra clique n=128" (fun () ->
             Windows.earliest_arrival wnet128 0);
         test "of_tgraph clique n=128" (fun () -> Windows.of_tgraph net128);
       ]);
    (let small_net = clique_net 32 in
     Test.make_grouped ~name:"connectivity" ~fmt:"%s %s"
       [
         test "edge-disjoint clique n=32" (fun () ->
             Disjoint.max_edge_disjoint small_net ~s:0 ~t:15);
         test "expanded build clique n=32" (fun () ->
             Expanded.build small_net);
       ]);
    (let star16 =
       (* Guaranteed-reachable input for the pruner: the {1,2} scheme
          unioned with random labels. *)
       Ops.union
         (Opt.star_two_labels (Sgraph.Gen.star 16))
         (star_net 16 6)
     in
     Test.make_grouped ~name:"optimization" ~fmt:"%s %s"
       [
         test "spanner prune star n=16 r=6" (fun () -> Spanner.prune star16);
         test "betweenness star n=64 r=8" (fun () ->
             Centrality.betweenness star64);
       ]);
    Test.make_grouped ~name:"generators" ~fmt:"%s %s"
      [
        test "barabasi-albert n=1024 m=3" (fun () ->
            Sgraph.Gen.barabasi_albert gen_rng ~n:1024 ~m:3);
        test "watts-strogatz n=1024 k=4" (fun () ->
            Sgraph.Gen.watts_strogatz gen_rng ~n:1024 ~k:4 ~beta:0.1);
      ];
    (let net64 = clique_net 64 in
     Test.make_grouped ~name:"extensions" ~fmt:"%s %s"
       [
         test "restless clique n=128 d=2" (fun () ->
             Restless.run ~delta:2 net128 0);
         test "walker clique n=128" (fun () ->
             Walker.walk gen_rng net128 ~source:0);
         test "counting clique n=64" (fun () ->
             Counting.foremost_journeys net64 0);
         test "markovian flood n=128" (fun () ->
             Evolving.Edge_markovian.flood
               (Evolving.Edge_markovian.create gen_rng ~n:128 ~p_up:0.1
                  ~p_down:0.1)
               ~source:0);
       ]);
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances =
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~kde:(Some 1000) ()
  in
  let tests = micro_tests () in
  let raw_results =
    List.map (fun test -> Benchmark.all cfg instances test) tests
  in
  List.map
    (fun raw ->
      let per_instance =
        List.map (fun instance -> Analyze.all ols instance raw) instances
      in
      Analyze.merge ols instances per_instance)
    raw_results

let () =
  List.iter
    (fun instance -> Bechamel_notty.Unit.add instance (Measure.unit instance))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ]

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

let run_micro () =
  print_endline
    "=================================================================";
  print_endline " Micro-benchmarks (Bechamel, time per run via OLS)";
  print_endline
    "=================================================================";
  let open Notty_unix in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  List.iter
    (fun results -> img (window, results) |> eol |> output_image)
    (benchmark ())

let () =
  let sink =
    Option.map
      (fun path ->
        let sink =
          try Obs.Sink.open_jsonl path with
          | Sys_error msg ->
            Printf.eprintf "cannot open trace file: %s\n" msg;
            exit 1
        in
        Obs.Sink.attach sink;
        sink)
      trace
  in
  if metrics || Option.is_some sink then Obs.Control.set_enabled true;
  if not no_tables then run_tables ();
  if not no_micro then run_micro ();
  Option.iter Obs.Sink.close sink;
  if metrics then Obs.Export.print_summary ()
